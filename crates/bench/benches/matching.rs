//! Benches for experiments E3–E7: `checkIfFollow` queries and the four
//! matching algorithms against the Glushkov DFA baseline — all constructed
//! from one shared `CompiledAnalysis` artifact, so compile-once/match-many
//! is what gets measured.
//!
//! Run with `cargo bench -p redet-bench --bench matching`; set
//! `REDET_BENCH_FAST=1` for a smoke run and `REDET_BENCH_JSON_DIR=dir` to
//! record a report.

use redet_automata::{GlushkovDfaMatcher, Matcher};
use redet_bench::{
    colored_matcher, compile_workload, harness::Harness, kocc_matcher, pathdecomp_matcher,
    starfree_matcher,
};
use redet_core::{DeterministicRegex, MatchStrategy};
use redet_tree::PosId;
use redet_workloads as workloads;

/// E3: constant-time checkIfFollow queries.
fn bench_check_if_follow(h: &mut Harness) {
    h.group("E3_check_if_follow");
    let sizes: &[usize] = if h.is_fast() { &[256] } else { &[256, 4096] };
    for &factors in sizes {
        let w = workloads::chare(factors, 4, 7);
        let compiled = compile_workload(&w);
        let analysis = compiled.analysis();
        let m = analysis.tree().num_positions();
        let queries: Vec<(PosId, PosId)> = (0..10_000u64)
            .map(|i| {
                let p = ((i.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize) % m;
                let q = ((i.wrapping_mul(0xda942042e4dd58b5) >> 33) as usize) % m;
                (PosId::from_index(p), PosId::from_index(q))
            })
            .collect();
        h.throughput(queries.len() as u64);
        h.bench("queries_10k", m, || {
            queries
                .iter()
                .filter(|&&(p, q)| analysis.check_if_follow(p, q))
                .count()
        });
    }
}

/// E4: k-occurrence matching as k grows.
fn bench_k_occurrence(h: &mut Harness) {
    h.group("E4_k_occurrence_matching");
    let word_len = if h.is_fast() { 1_000 } else { 10_000 };
    for k in [1usize, 4, 16] {
        let w = workloads::k_occurrence(k, 40, 4, 11);
        let compiled = compile_workload(&w);
        let word = workloads::sample_member_word(&w.regex, word_len, 13);
        h.throughput(word.len() as u64);
        let matcher = kocc_matcher(&compiled);
        h.bench("kocc", k, || matcher.matches(&word));
        let dfa = GlushkovDfaMatcher::from_tree(compiled.analysis().tree()).unwrap();
        h.bench("glushkov_dfa", k, || dfa.matches(&word));
    }
}

/// E5: path-decomposition matching as the alternation depth c_e grows.
fn bench_path_decomposition(h: &mut Harness) {
    h.group("E5_path_decomposition_matching");
    let word_len = if h.is_fast() { 1_000 } else { 10_000 };
    let depths: &[usize] = if h.is_fast() { &[8] } else { &[2, 8, 32] };
    for &depth in depths {
        let w = workloads::deep_alternation(depth, 17);
        let compiled = compile_workload(&w);
        let word = workloads::sample_member_word(&w.regex, word_len, 19);
        h.throughput(word.len() as u64);
        let matcher = pathdecomp_matcher(&compiled);
        h.bench("path_decomposition", depth, || matcher.matches(&word));
        let dfa = GlushkovDfaMatcher::from_tree(compiled.analysis().tree()).unwrap();
        h.bench("glushkov_dfa", depth, || dfa.matches(&word));
    }
}

/// E6: colored-ancestor matching as |e| grows (fixed word length).
fn bench_colored_ancestor(h: &mut Harness) {
    h.group("E6_colored_ancestor_matching");
    let word_len = if h.is_fast() { 1_000 } else { 10_000 };
    let sizes: &[usize] = if h.is_fast() { &[256] } else { &[256, 4096] };
    for &factors in sizes {
        let w = workloads::chare(factors, 4, 23);
        let compiled = compile_workload(&w);
        let word = workloads::sample_member_word(&w.regex, word_len, 29);
        h.throughput(word.len() as u64);
        let matcher = colored_matcher(&compiled);
        h.bench("colored_ancestor", w.regex.num_positions(), || {
            matcher.matches(&word)
        });
    }
}

/// E7: star-free multi-word matching (one traversal over the dynamic
/// LCA-closed skeleta, scratch reused across batches) vs the flat-list
/// formulation vs word-by-word DFA.
fn bench_star_free(h: &mut Harness) {
    h.group("E7_star_free_multiword");
    let w = workloads::star_free_chare(120, 4, 31);
    let compiled = compile_workload(&w);
    let starfree = starfree_matcher(&compiled);
    let dfa = GlushkovDfaMatcher::from_tree(compiled.analysis().tree()).unwrap();
    let counts: &[usize] = if h.is_fast() { &[100] } else { &[100, 2000] };
    for &n in counts {
        let words: Vec<Vec<redet_syntax::Symbol>> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    workloads::sample_member_word(&w.regex, 60, i as u64)
                } else {
                    workloads::sample_random_word(&w.alphabet, 40, i as u64)
                }
            })
            .collect();
        let total: usize = words.iter().map(Vec::len).sum();
        h.throughput(total as u64);
        let mut scratch = redet_core::matcher::starfree::BatchScratch::new();
        let mut results = Vec::new();
        h.bench("batch_single_traversal", n, || {
            starfree.match_words_with(&words, &mut scratch, &mut results);
            results.iter().filter(|&&x| x).count()
        });
        h.bench("batch_flat_lists", n, || {
            starfree
                .match_words_flat(&words)
                .iter()
                .filter(|&&x| x)
                .count()
        });
        h.bench("word_by_word_dfa", n, || {
            words.iter().filter(|w| dfa.matches(w)).count()
        });
    }
}

/// E10: compile-once / match-many — the shared-artifact pipeline against
/// recompiling per strategy (what the facade did before the pipeline
/// existed) and recompiling per word (the pathological baseline).
fn bench_compile_once_match_many(h: &mut Harness) {
    h.group("E10_compile_once_match_many");
    let w = workloads::chare(60, 4, 37);
    let printed = redet_syntax::printer::to_string(&w.regex, &w.alphabet);
    let n_words = if h.is_fast() { 50 } else { 500 };
    let words: Vec<Vec<redet_syntax::Symbol>> = (0..n_words)
        .map(|i| workloads::sample_member_word(&w.regex, 40, i as u64))
        .collect();
    let total: usize = words.iter().map(Vec::len).sum();

    // Compile once, match all words, switching across every strategy on the
    // same artifact (no re-parse, no re-analysis).
    h.throughput(total as u64);
    h.bench("shared_artifact_all_strategies", n_words, || {
        let model = DeterministicRegex::compile(&printed).unwrap();
        let mut accepted = 0usize;
        for strategy in [
            MatchStrategy::KOccurrence,
            MatchStrategy::PathDecomposition,
            MatchStrategy::ColoredAncestor,
            MatchStrategy::GlushkovDfa,
        ] {
            let m = model.with_strategy(strategy).unwrap();
            accepted += words.iter().filter(|w| m.matches_symbols(w)).count();
        }
        accepted
    });

    // The pre-pipeline shape: each strategy re-runs the whole compilation.
    h.bench("recompile_per_strategy", n_words, || {
        let mut accepted = 0usize;
        for strategy in [
            MatchStrategy::KOccurrence,
            MatchStrategy::PathDecomposition,
            MatchStrategy::ColoredAncestor,
            MatchStrategy::GlushkovDfa,
        ] {
            let m = DeterministicRegex::compile_with(&printed, strategy).unwrap();
            accepted += words.iter().filter(|w| m.matches_symbols(w)).count();
        }
        accepted
    });
}

/// E11: schema-level document validation — one `Arc<Schema>` compiled from
/// the 22-declaration `BOOK_DTD`, N synthetic documents validated
/// event-by-event by the `DocumentValidator` (auto-selected per-element
/// strategies, recycled scratch pool), against a DFA-per-element baseline
/// (`O(σ|e|)` preprocessing per element, hand-rolled frame stack).
fn bench_document_validation(h: &mut Harness) {
    use redet_automata::PosStepper;
    use redet_bench::book_document_events;
    use redet_schema::SchemaBuilder;
    use redet_tree::PosId;

    h.group("E11_document_validation");
    let schema = SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");

    // The baseline: a Glushkov DFA per element (where its counting-blind
    // view is buildable), driven over a hand-rolled stack of positions —
    // what a validator without the schema layer would do.
    let dfas: Vec<Option<GlushkovDfaMatcher>> = schema
        .alphabet()
        .symbols()
        .map(|sym| {
            schema
                .model(sym)
                .and_then(|m| GlushkovDfaMatcher::from_tree(m.analysis().tree()).ok())
        })
        .collect();

    let counts: &[usize] = if h.is_fast() { &[10] } else { &[10, 100] };
    for &n in counts {
        let documents: Vec<Vec<redet_bench::DocEvent>> = (0..n)
            .map(|i| book_document_events(&schema, 4, 0xE11 ^ i as u64))
            .collect();
        let total_events: usize = documents.iter().map(Vec::len).sum();
        h.throughput(total_events as u64);

        let mut validator = schema.validator();
        h.bench("schema_validator", n, || {
            let mut valid = 0usize;
            for events in &documents {
                if validator.validate_events(events).is_ok() {
                    valid += 1;
                }
            }
            valid
        });

        let mut stack: Vec<(usize, Option<PosId>, bool)> = Vec::new();
        h.bench("dfa_per_element", n, || {
            let mut valid = 0usize;
            for events in &documents {
                let mut ok = true;
                stack.clear();
                for event in events {
                    match event {
                        redet_bench::DocEvent::Open(sym) => {
                            if let Some((parent_sym, state, alive)) = stack.last_mut() {
                                if *alive {
                                    if let Some(dfa) = &dfas[*parent_sym] {
                                        match state.and_then(|p| dfa.advance(p, *sym)) {
                                            Some(next) => *state = Some(next),
                                            None => {
                                                *alive = false;
                                                ok = false;
                                            }
                                        }
                                    }
                                }
                            }
                            let start = dfas[sym.index()].as_ref().map(|dfa| dfa.begin());
                            stack.push((sym.index(), start, true));
                        }
                        redet_bench::DocEvent::Close => {
                            if let Some((sym, state, alive)) = stack.pop() {
                                if alive {
                                    if let (Some(dfa), Some(p)) = (&dfas[sym], state) {
                                        if !dfa.can_end(p) {
                                            ok = false;
                                        }
                                    }
                                }
                            }
                        }
                        _ => unreachable!("the generator emits only open/close events"),
                    }
                }
                if ok {
                    valid += 1;
                }
            }
            valid
        });
    }
}

/// E12: sharded batch validation — N documents fanned across M worker
/// validators sharing one `Arc<Schema>` (`ValidatorPool` over
/// `std::thread::scope`), swept over the worker count, against the
/// single-threaded validator loop on the same corpus (the `single_thread`
/// reference series the regression gate ratios against).
fn bench_batch_validation(h: &mut Harness) {
    use redet_bench::book_document_events;
    use redet_schema::{SchemaBuilder, ValidatorPool};

    h.group("E12_batch_validation");
    let schema = SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");
    // Scoped threads are spawned per batch (tens of microseconds each), so
    // the corpus must be large enough for the sharded work to dominate —
    // the regime the pool is for.
    let (n_docs, chapters) = if h.is_fast() { (24, 2) } else { (256, 8) };
    let documents: Vec<Vec<redet_bench::DocEvent>> = (0..n_docs)
        .map(|i| book_document_events(&schema, chapters, 0xE12 ^ i as u64))
        .collect();
    let total_events: usize = documents.iter().map(Vec::len).sum();
    h.throughput(total_events as u64);

    let mut single = schema.validator();
    // Sweep worker counts up to the hardware's parallelism — measuring
    // 8 workers on a single-core container would only record scheduler
    // noise. The regression gate's scaling cap applies whenever a
    // multi-worker point was measured.
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_workers = if h.is_fast() { 2 } else { 8 };
    for workers in [1usize, 2, 4, 8] {
        if workers > max_workers || (workers > 1 && workers > parallelism) {
            continue;
        }
        // The reference series, re-measured at each parameter so the gate
        // can ratio `sharded_pool` against same-run hardware.
        h.bench("single_thread", workers, || {
            documents
                .iter()
                .filter(|d| single.validate_events(d).is_ok())
                .count()
        });
        let mut pool = ValidatorPool::new(schema.clone(), workers);
        pool.validate_batch(&documents); // warm the workers
        h.bench("sharded_pool", workers, || {
            pool.validate_batch(&documents)
                .iter()
                .filter(|r| r.is_ok())
                .count()
        });
    }
}

/// E13: interleaved connection serving — N in-flight documents fed
/// round-robin in 64-event chunks through one `ValidationService` (the
/// regime a server with many connections sees: every chunk resumes a parked
/// document), against the per-document validator loop over the same corpus
/// (the `per_document` reference series the regression gate ratios against;
/// the acceptance criterion caps interleaved serving at 1.5× per-document).
/// A raw-byte series feeds the same corpus as serialized tag soup in 4 KiB
/// chunks, measuring the streaming tokenizer's overhead on top.
fn bench_interleaved_serving(h: &mut Harness) {
    use redet_bench::book_document_events;
    use redet_schema::{DocId, SchemaBuilder};

    h.group("E13_interleaved_serving");
    let schema = SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");
    let (n_docs, chapters) = if h.is_fast() { (16, 2) } else { (64, 4) };
    let documents: Vec<Vec<redet_bench::DocEvent>> = (0..n_docs)
        .map(|i| book_document_events(&schema, chapters, 0xE13 ^ i as u64))
        .collect();
    let total_events: usize = documents.iter().map(Vec::len).sum();
    h.throughput(total_events as u64);

    // The reference: one warmed validator, document after document.
    let mut validator = schema.validator();
    h.bench("per_document", n_docs, || {
        documents
            .iter()
            .filter(|d| validator.validate_events(d).is_ok())
            .count()
    });

    // All documents in flight at once, round-robin 64-event chunks.
    let mut service = schema.service();
    let mut handles: Vec<DocId> = Vec::with_capacity(documents.len());
    let mut cursors: Vec<usize> = Vec::with_capacity(documents.len());
    h.bench("service_interleaved", n_docs, || {
        handles.clear();
        handles.extend((0..documents.len()).map(|_| service.open()));
        cursors.clear();
        cursors.resize(documents.len(), 0);
        let mut live = documents.len();
        while live > 0 {
            live = 0;
            for (i, doc) in documents.iter().enumerate() {
                let cursor = cursors[i];
                if cursor >= doc.len() {
                    continue;
                }
                let end = (cursor + 64).min(doc.len());
                let _ = service.feed(handles[i], &doc[cursor..end]);
                cursors[i] = end;
                if end < doc.len() {
                    live += 1;
                }
            }
        }
        handles
            .drain(..)
            .filter(|&h| service.finish(h).is_ok())
            .count()
    });

    // The same corpus as raw bytes (tag soup), 4 KiB chunks round-robin:
    // per-document throughput including the streaming tokenizer.
    let streams: Vec<String> = documents
        .iter()
        .map(|events| redet_bench::events_to_xml(&schema, events))
        .collect();
    h.bench("service_bytes", n_docs, || {
        handles.clear();
        handles.extend((0..streams.len()).map(|_| service.open()));
        cursors.clear();
        cursors.resize(streams.len(), 0);
        let mut live = streams.len();
        while live > 0 {
            live = 0;
            for (i, xml) in streams.iter().enumerate() {
                let bytes = xml.as_bytes();
                let cursor = cursors[i];
                if cursor >= bytes.len() {
                    continue;
                }
                let end = (cursor + 4096).min(bytes.len());
                let _ = service.feed_bytes(handles[i], &bytes[cursor..end]);
                cursors[i] = end;
                if end < bytes.len() {
                    live += 1;
                }
            }
        }
        handles
            .drain(..)
            .filter(|&h| service.finish(h).is_ok())
            .count()
    });
}

/// E14: raw tokenizer throughput — the bulk SWAR scanner (`feed`) against
/// the byte-at-a-time scalar oracle (`feed_scalar`) over the three input
/// shapes that stress different skip classes: text-heavy (long character
/// data, the `memchr('<')` fast path), tag-dense (short names back to back,
/// the serving-corpus regime where per-tag dispatch dominates), and
/// comment/CDATA-heavy (the `-`/`]` skip loops). Throughput is bytes/s;
/// the regression gate ratios `bulk` against the `scalar` reference so the
/// bulk scanner can never quietly regress toward byte-at-a-time speed.
fn bench_tokenizer_throughput(h: &mut Harness) {
    use redet_schema::{Tag, Tokenizer};

    h.group("E14_tokenizer_throughput");
    let target = if h.is_fast() { 8 << 10 } else { 64 << 10 };
    let mut inputs: Vec<(&str, Vec<u8>)> = Vec::new();
    // Text-heavy: long character-data runs between sparse tags.
    let mut doc = b"<doc>".to_vec();
    while doc.len() < target {
        doc.extend_from_slice(b"<p>");
        for _ in 0..40 {
            doc.extend_from_slice(b"lorem ipsum dolor sit amet consectetur ");
        }
        doc.extend_from_slice(b"</p>");
    }
    doc.extend_from_slice(b"</doc>");
    inputs.push(("text", doc));
    // Tag-dense: markup only, the shape `events_to_xml` serves in E13.
    let mut doc = b"<doc>".to_vec();
    while doc.len() < target {
        doc.extend_from_slice(b"<chapter><title/><para attr='v'/></chapter>");
    }
    doc.extend_from_slice(b"</doc>");
    inputs.push(("tags", doc));
    // Comment/CDATA-heavy: the '-' and ']' skip loops plus fake closers.
    let mut doc = b"<doc>".to_vec();
    while doc.len() < target {
        doc.extend_from_slice(b"<!-- a comment - with -- dashes and > -->");
        doc.extend_from_slice(b"<![CDATA[ raw <bytes> ] ]] and more ]]><a/>");
    }
    doc.extend_from_slice(b"</doc>");
    inputs.push(("comments", doc));

    for (shape, doc) in &inputs {
        h.throughput(doc.len() as u64);
        let mut tokenizer = Tokenizer::default();
        h.bench("bulk", shape, || {
            let mut tags = 0usize;
            tokenizer.feed(doc, &mut |tag| {
                tags += matches!(tag, Tag::Open(_)) as usize;
                true
            });
            tokenizer.reset();
            tags
        });
        let mut tokenizer = Tokenizer::default();
        h.bench("scalar", shape, || {
            let mut tags = 0usize;
            tokenizer.feed_scalar(doc, &mut |tag| {
                tags += matches!(tag, Tag::Open(_)) as usize;
                true
            });
            tokenizer.reset();
            tags
        });
    }
}

/// E15: overload serving — what resource governance costs. `feed_unlimited`
/// is the reference: the E13-style interleaved corpus through an ungoverned
/// service. `feed_governed` runs identical traffic with every per-document
/// cap configured (none firing) and the admission cap exactly at the fleet
/// size — the handle-capacity edge — so the gate pins the limit bookkeeping
/// at near-zero overhead. `rejected_feed` measures the fail-fast early-out:
/// the whole chunk schedule aimed at an already-rejected handle.
/// `tick_sweep_1k` opens 1k idle handles (128 in fast mode) and measures
/// one full sweep plus the tombstone drain. All series share the
/// corpus-size param so the regression gate ratios each of them against
/// `feed_unlimited`.
fn bench_overload_serving(h: &mut Harness) {
    use redet_bench::book_document_events;
    use redet_schema::{DocEvent, DocId, FeedStatus, SchemaBuilder, ServiceLimits};

    h.group("E15_overload_serving");
    let schema = SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");
    let (n_docs, chapters, idle) = if h.is_fast() {
        (16, 2, 128usize)
    } else {
        (64, 4, 1024usize)
    };
    let documents: Vec<Vec<DocEvent>> = (0..n_docs)
        .map(|i| book_document_events(&schema, chapters, 0xE15 ^ i as u64))
        .collect();
    let total_events: usize = documents.iter().map(Vec::len).sum();
    h.throughput(total_events as u64);

    /// One interleaved round: all documents in flight, 64-event chunks
    /// round-robin — the E13 serving loop, reused for both limit configs.
    fn round(
        service: &mut redet_schema::ValidationService,
        documents: &[Vec<DocEvent>],
        handles: &mut Vec<DocId>,
        cursors: &mut Vec<usize>,
    ) -> usize {
        handles.clear();
        handles.extend((0..documents.len()).map(|_| service.open()));
        cursors.clear();
        cursors.resize(documents.len(), 0);
        let mut live = documents.len();
        while live > 0 {
            live = 0;
            for (i, doc) in documents.iter().enumerate() {
                let cursor = cursors[i];
                if cursor >= doc.len() {
                    continue;
                }
                let end = (cursor + 64).min(doc.len());
                let _ = service.feed(handles[i], &doc[cursor..end]);
                cursors[i] = end;
                if end < doc.len() {
                    live += 1;
                }
            }
        }
        handles
            .drain(..)
            .filter(|&h| service.finish(h).is_ok())
            .count()
    }

    let mut handles: Vec<DocId> = Vec::with_capacity(n_docs);
    let mut cursors: Vec<usize> = Vec::with_capacity(n_docs);

    let mut service = schema.service();
    h.bench("feed_unlimited", n_docs, || {
        round(&mut service, &documents, &mut handles, &mut cursors)
    });

    // Every per-document cap set (sized so nothing fires) and admission
    // capped at exactly the fleet size: every open runs at the edge.
    let mut governed = schema.service_with_limits(
        ServiceLimits::default()
            .with_max_depth(256)
            .with_max_bytes(1 << 30)
            .with_max_events(1 << 24)
            .with_max_name_len(64)
            .with_max_in_flight(n_docs as u32)
            .with_idle_budget(1 << 40),
    );
    h.bench("feed_governed", n_docs, || {
        round(&mut governed, &documents, &mut handles, &mut cursors)
    });

    // The fail-fast early-out: a rejected handle swallowing the whole
    // chunk schedule without touching a matcher.
    let rejected = governed.open();
    let bad = [
        DocEvent::Open(schema.lookup("book").unwrap()),
        DocEvent::Open(schema.lookup("back").unwrap()),
    ];
    assert_eq!(governed.feed(rejected, &bad), FeedStatus::Rejected);
    h.bench("rejected_feed", n_docs, || {
        let mut chunks = 0usize;
        for doc in &documents {
            for chunk in doc.chunks(64) {
                chunks += usize::from(governed.feed(rejected, chunk) == FeedStatus::Rejected);
            }
        }
        chunks
    });
    governed.close(rejected);

    // One sweep over `idle` idle handles plus the tombstone drain. The
    // param stays the corpus size so the gate ratios this series too; the
    // sweep width is fixed by `idle` (the series name carries it).
    let mut sweeper = schema.service_with_limits(ServiceLimits::default().with_idle_budget(0));
    let mut clock = 0u64;
    h.bench("tick_sweep_1k", n_docs, || {
        handles.clear();
        handles.extend((0..idle).map(|_| sweeper.open()));
        clock += 1;
        let swept = sweeper.tick(clock);
        for handle in handles.drain(..) {
            sweeper.close(handle);
        }
        swept
    });
}

/// E16: full markup coverage — the attribute/text/entity surface end to
/// end. The corpus is the E13 serving corpus enriched with declared
/// attributes and character data (`book_markup_events`): `per_document` is
/// the warmed-validator reference over the event stream, `service_events`
/// serves the same streams interleaved, `service_bytes` feeds the
/// serialized tag soup (attribute-dense start tags, text runs) through the
/// streaming tokenizer, and `service_bytes_entities` the same documents
/// with every attribute value and text run carrying entity references —
/// the decode path. The regression gate ratios every series against
/// `per_document`.
fn bench_markup_coverage(h: &mut Harness) {
    use redet_bench::{book_markup_events, events_to_xml};
    use redet_schema::{DocId, SchemaBuilder};

    h.group("E16_markup_coverage");
    let schema = SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");
    let (n_docs, chapters) = if h.is_fast() { (16, 2) } else { (64, 4) };
    let documents: Vec<Vec<redet_bench::DocEvent>> = (0..n_docs)
        .map(|i| book_markup_events(&schema, chapters, 0xE16 ^ i as u64))
        .collect();
    let total_events: usize = documents.iter().map(Vec::len).sum();
    h.throughput(total_events as u64);

    let mut validator = schema.validator();
    h.bench("per_document", n_docs, || {
        documents
            .iter()
            .filter(|d| validator.validate_events(d).is_ok())
            .count()
    });

    /// The E13 interleaved byte-serving loop: 4 KiB chunks round-robin.
    fn byte_round(
        service: &mut redet_schema::ValidationService,
        streams: &[String],
        handles: &mut Vec<DocId>,
        cursors: &mut Vec<usize>,
    ) -> usize {
        handles.clear();
        handles.extend((0..streams.len()).map(|_| service.open()));
        cursors.clear();
        cursors.resize(streams.len(), 0);
        let mut live = streams.len();
        while live > 0 {
            live = 0;
            for (i, xml) in streams.iter().enumerate() {
                let bytes = xml.as_bytes();
                let cursor = cursors[i];
                if cursor >= bytes.len() {
                    continue;
                }
                let end = (cursor + 4096).min(bytes.len());
                let _ = service.feed_bytes(handles[i], &bytes[cursor..end]);
                cursors[i] = end;
                if end < bytes.len() {
                    live += 1;
                }
            }
        }
        handles
            .drain(..)
            .filter(|&h| service.finish(h).is_ok())
            .count()
    }

    let mut service = schema.service();
    let mut handles: Vec<DocId> = Vec::with_capacity(n_docs);
    let mut cursors: Vec<usize> = Vec::with_capacity(n_docs);
    h.bench("service_events", n_docs, || {
        handles.clear();
        handles.extend((0..documents.len()).map(|_| service.open()));
        cursors.clear();
        cursors.resize(documents.len(), 0);
        let mut live = documents.len();
        while live > 0 {
            live = 0;
            for (i, doc) in documents.iter().enumerate() {
                let cursor = cursors[i];
                if cursor >= doc.len() {
                    continue;
                }
                let end = (cursor + 64).min(doc.len());
                let _ = service.feed(handles[i], &doc[cursor..end]);
                cursors[i] = end;
                if end < doc.len() {
                    live += 1;
                }
            }
        }
        handles
            .drain(..)
            .filter(|&h| service.finish(h).is_ok())
            .count()
    });

    let streams: Vec<String> = documents
        .iter()
        .map(|events| events_to_xml(&schema, events))
        .collect();
    h.bench("service_bytes", n_docs, || {
        byte_round(&mut service, &streams, &mut handles, &mut cursors)
    });

    // The same documents with entity references in every attribute value
    // and text run: the reference-decode path at serving density.
    let entity_streams: Vec<String> = documents
        .iter()
        .map(|events| {
            let mut out = String::new();
            let mut stack: Vec<&str> = Vec::new();
            let mut pending = false;
            for event in events {
                match event {
                    redet_bench::DocEvent::Open(sym) => {
                        if pending {
                            out.push('>');
                        }
                        let name = schema.name(*sym);
                        out.push('<');
                        out.push_str(name);
                        stack.push(name);
                        pending = true;
                    }
                    redet_bench::DocEvent::Attr(sym) => {
                        let name = schema.name(*sym);
                        out.push(' ');
                        out.push_str(name);
                        out.push_str("=\"a&amp;b &#x2013; &lt;c&gt;\"");
                    }
                    redet_bench::DocEvent::Text => {
                        if pending {
                            out.push('>');
                            pending = false;
                        }
                        out.push_str("G &amp; S &#x2013; &quot;vol.&quot; &#49; &apos;x&apos;");
                    }
                    redet_bench::DocEvent::Close => {
                        let name = stack.pop().expect("balanced stream");
                        if pending {
                            out.push_str("/>");
                            pending = false;
                        } else {
                            out.push_str("</");
                            out.push_str(name);
                            out.push('>');
                        }
                    }
                    _ => unreachable!("the generator emits only the four event kinds"),
                }
            }
            out
        })
        .collect();
    h.bench("service_bytes_entities", n_docs, || {
        byte_round(&mut service, &entity_streams, &mut handles, &mut cursors)
    });
}

/// E17: the schema registry — cache-hit opens vs direct validator
/// construction (gated), corpus compilation cold vs cache-hot, and
/// hot-swap latency under in-flight load (both measured, ungated: their
/// cost is pipeline- and lock-bound, not comparable across machines as a
/// ratio to validation work).
fn bench_schema_registry(h: &mut Harness) {
    use redet_schema::registry::{Registry, SharedSchema};
    use redet_schema::{Schema, SchemaBuilder};
    use std::sync::Arc;

    h.group("E17_schema_registry");
    let (distinct, total, inflight) = if h.is_fast() {
        (8, 48, 16)
    } else {
        (32, 256, 64)
    };
    let sources = redet_workloads::schema_corpus(distinct, total, 0xE17);

    // Registry-mediated opens vs direct validator construction over the
    // same per-source artifact sequence. `open_handle` is the serving
    // path after a publish — `SharedSchema::load` (read lock + `Arc`
    // clone) then `validator()` — and must be noise next to building the
    // validator from an already-held `Arc`. `open_rehash` re-presents the
    // DTD text on every open (normalize + hash + map probe, all cache
    // hits): measured at its own param because its cost is `O(|text|)` by
    // design, not comparable as a same-param ratio. `open_direct` is the
    // group's gate reference.
    let mut registry = Registry::new();
    let artifacts: Vec<Arc<Schema>> = sources
        .iter()
        .map(|s| registry.compile(s).expect("corpus schemas compile"))
        .collect();
    let handles: Vec<Arc<SharedSchema>> = artifacts
        .iter()
        .map(|schema| Arc::new(SharedSchema::new(Arc::clone(schema))))
        .collect();
    h.throughput(total as u64);
    h.bench("open_direct", total, || {
        artifacts
            .iter()
            .map(|schema| schema.validator().schema().len())
            .sum::<usize>()
    });
    h.bench("open_handle", total, || {
        handles
            .iter()
            .map(|handle| handle.load().validator().schema().len())
            .sum::<usize>()
    });

    // Corpus compilation, cold (fresh registry, every distinct text runs
    // the pipeline) vs cache-hot (all hits), plus the per-open rehash —
    // all at a different param than the open series so the gate never
    // ratios `O(|text|)` hashing or pipeline time against opens.
    h.throughput(distinct as u64);
    h.bench("open_rehash", distinct, || {
        sources
            .iter()
            .take(distinct)
            .map(|s| registry.compile(s).unwrap().validator().schema().len())
            .sum::<usize>()
    });
    h.bench("compile_cold", distinct, || {
        let mut fresh = Registry::new();
        fresh.compile_corpus(&sources, 1);
        fresh.stats().compiled
    });
    h.bench("compile_cached", distinct, || {
        registry.compile_corpus(&sources, 1);
        registry.stats().compiled
    });

    // Hot-swap latency with `inflight` half-fed documents open: one
    // `SharedSchema::publish` plus the service rebinding (spare-list
    // flush) per iteration. In-flight handles are untouched by design.
    let v1: Arc<Schema> = SchemaBuilder::new()
        .parse_dtd(
            "<!ELEMENT doc (title, author)><!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>",
        )
        .build()
        .expect("v1 compiles");
    let v2: Arc<Schema> = SchemaBuilder::new()
        .parse_dtd("<!ELEMENT doc (title, author, year)><!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT year (#PCDATA)>")
        .build()
        .expect("v2 compiles");
    let shared = SharedSchema::new(Arc::clone(&v1));
    let mut service = v1.service();
    for _ in 0..inflight {
        let doc = service.open();
        let _ = service.feed_bytes(doc, b"<doc><title/>");
    }
    let mut flip = false;
    h.throughput(1);
    h.bench("swap_inflight", inflight, || {
        flip = !flip;
        let next = if flip { &v2 } else { &v1 };
        shared.publish(Arc::clone(next));
        service.swap_schema(shared.load());
        shared.epoch()
    });
}

fn main() {
    let mut h = Harness::new();
    bench_check_if_follow(&mut h);
    bench_k_occurrence(&mut h);
    bench_path_decomposition(&mut h);
    bench_colored_ancestor(&mut h);
    bench_star_free(&mut h);
    bench_compile_once_match_many(&mut h);
    bench_document_validation(&mut h);
    bench_batch_validation(&mut h);
    bench_interleaved_serving(&mut h);
    bench_tokenizer_throughput(&mut h);
    bench_overload_serving(&mut h);
    bench_markup_coverage(&mut h);
    bench_schema_registry(&mut h);
    h.finish("matching");
}
