//! Criterion benches for experiments E3–E7: `checkIfFollow` queries and the
//! four matching algorithms against the Glushkov DFA baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use redet_automata::{GlushkovDfaMatcher, Matcher};
use redet_bench::{colored_matcher, kocc_matcher, pathdecomp_matcher, preprocess};
use redet_core::matcher::starfree::StarFreeMatcher;
use redet_tree::{PosId, TreeAnalysis};
use redet_workloads as workloads;
use std::time::Duration;

/// E3: constant-time checkIfFollow queries.
fn bench_check_if_follow(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_check_if_follow");
    group.sample_size(10).measurement_time(Duration::from_millis(600));
    for factors in [256usize, 4096] {
        let w = workloads::chare(factors, 4, 7);
        let analysis = TreeAnalysis::build(&w.regex);
        let m = analysis.tree().num_positions();
        let queries: Vec<(PosId, PosId)> = (0..10_000u64)
            .map(|i| {
                let p = ((i.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize) % m;
                let q = ((i.wrapping_mul(0xda942042e4dd58b5) >> 33) as usize) % m;
                (PosId::from_index(p), PosId::from_index(q))
            })
            .collect();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("queries_10k", m), &queries, |b, qs| {
            b.iter(|| qs.iter().filter(|&&(p, q)| analysis.check_if_follow(p, q)).count())
        });
    }
    group.finish();
}

/// E4: k-occurrence matching as k grows.
fn bench_k_occurrence(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_k_occurrence_matching");
    group.sample_size(10).measurement_time(Duration::from_millis(600));
    for k in [1usize, 4, 16] {
        let w = workloads::k_occurrence(k, 40, 4, 11);
        let (analysis, _) = preprocess(&w.regex);
        let word = workloads::sample_member_word(&w.regex, 10_000, 13);
        group.throughput(Throughput::Elements(word.len() as u64));
        let matcher = kocc_matcher(analysis);
        group.bench_with_input(BenchmarkId::new("kocc", k), &word, |b, word| {
            b.iter(|| matcher.matches(word))
        });
        let dfa = GlushkovDfaMatcher::build(&w.regex).unwrap();
        group.bench_with_input(BenchmarkId::new("glushkov_dfa", k), &word, |b, word| {
            b.iter(|| dfa.matches(word))
        });
    }
    group.finish();
}

/// E5: path-decomposition matching as the alternation depth c_e grows.
fn bench_path_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_path_decomposition_matching");
    group.sample_size(10).measurement_time(Duration::from_millis(600));
    for depth in [2usize, 8, 32] {
        let w = workloads::deep_alternation(depth, 17);
        let (analysis, _) = preprocess(&w.regex);
        let word = workloads::sample_member_word(&w.regex, 10_000, 19);
        group.throughput(Throughput::Elements(word.len() as u64));
        let matcher = pathdecomp_matcher(analysis);
        group.bench_with_input(BenchmarkId::new("path_decomposition", depth), &word, |b, word| {
            b.iter(|| matcher.matches(word))
        });
        let dfa = GlushkovDfaMatcher::build(&w.regex).unwrap();
        group.bench_with_input(BenchmarkId::new("glushkov_dfa", depth), &word, |b, word| {
            b.iter(|| dfa.matches(word))
        });
    }
    group.finish();
}

/// E6: colored-ancestor matching as |e| grows (fixed word length).
fn bench_colored_ancestor(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_colored_ancestor_matching");
    group.sample_size(10).measurement_time(Duration::from_millis(600));
    for factors in [256usize, 4096] {
        let w = workloads::chare(factors, 4, 23);
        let (analysis, certificate) = preprocess(&w.regex);
        let word = workloads::sample_member_word(&w.regex, 10_000, 29);
        group.throughput(Throughput::Elements(word.len() as u64));
        let matcher = colored_matcher(analysis, certificate);
        group.bench_with_input(
            BenchmarkId::new("colored_ancestor", w.regex.num_positions()),
            &word,
            |b, word| b.iter(|| matcher.matches(word)),
        );
    }
    group.finish();
}

/// E7: star-free multi-word matching (one traversal) vs word-by-word DFA.
fn bench_star_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_star_free_multiword");
    group.sample_size(10).measurement_time(Duration::from_millis(800));
    let w = workloads::star_free_chare(120, 4, 31);
    let (analysis, _) = preprocess(&w.regex);
    let starfree = StarFreeMatcher::new(analysis).unwrap();
    let dfa = GlushkovDfaMatcher::build(&w.regex).unwrap();
    for n in [100usize, 2000] {
        let words: Vec<Vec<redet_syntax::Symbol>> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    workloads::sample_member_word(&w.regex, 60, i as u64)
                } else {
                    workloads::sample_random_word(&w.alphabet, 40, i as u64)
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("batch_single_traversal", n), &words, |b, words| {
            b.iter(|| starfree.match_words(words))
        });
        group.bench_with_input(BenchmarkId::new("word_by_word_dfa", n), &words, |b, words| {
            b.iter(|| words.iter().filter(|w| dfa.matches(w)).count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_check_if_follow,
    bench_k_occurrence,
    bench_path_decomposition,
    bench_colored_ancestor,
    bench_star_free
);
criterion_main!(benches);
