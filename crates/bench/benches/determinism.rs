//! Benches for experiments E1/E2/E8: determinism testing and preprocessing
//! cost — the pipeline's analyze + certify stages vs the Glushkov baseline.
//!
//! The timed closures borrow the pre-built AST on both sides (no clones in
//! the loop), so the comparison isolates exactly the work the paper counts:
//! `TreeAnalysis::build` + `check_determinism` (the `O(|e|)` stages 3–4 of
//! the pipeline) against the `Θ(σ|e|)` Glushkov construction.
//!
//! Run with `cargo bench -p redet-bench --bench determinism`; set
//! `REDET_BENCH_FAST=1` for a smoke run and `REDET_BENCH_JSON_DIR=dir` to
//! record a report.

use redet_automata::{glushkov_determinism, GlushkovAutomaton};
use redet_bench::harness::Harness;
use redet_core::check_determinism;
use redet_tree::TreeAnalysis;
use redet_workloads as workloads;

/// The pipeline's analyze + certify stages (Theorem 3.5 path).
fn pipeline_determinism(regex: &redet_syntax::Regex) -> bool {
    let analysis = TreeAnalysis::build(regex);
    check_determinism(&analysis).is_ok()
}

/// E1: mixed content (a1 + … + a_m)* — the Glushkov baseline is quadratic,
/// the pipeline stages are linear.
fn bench_mixed_content(h: &mut Harness) {
    h.group("E1_determinism_mixed_content");
    let sizes: &[usize] = if h.is_fast() {
        &[256]
    } else {
        &[256, 1024, 4096]
    };
    for &m in sizes {
        let w = workloads::mixed_content(m);
        h.bench("pipeline_linear", m, || pipeline_determinism(&w.regex));
        h.bench("glushkov_baseline", m, || {
            glushkov_determinism(&GlushkovAutomaton::build(&w.regex)).is_ok()
        });
    }
}

/// E2: realistic families (CHARE, k-occurrence, deep alternation).
fn bench_families(h: &mut Harness) {
    h.group("E2_determinism_families");
    let scale = if h.is_fast() { 4 } else { 1 };
    let families = [
        ("chare", workloads::chare(400 / scale, 5, 1)),
        (
            "k_occurrence_4",
            workloads::k_occurrence(4, 100 / scale, 4, 2),
        ),
        ("deep_alternation_16", workloads::deep_alternation(16, 3)),
    ];
    for (name, w) in &families {
        h.bench("pipeline_linear", name, || pipeline_determinism(&w.regex));
        h.bench("glushkov_baseline", name, || {
            glushkov_determinism(&GlushkovAutomaton::build(&w.regex)).is_ok()
        });
    }
}

/// E8: preprocessing cost by stage — the shared tree analysis and the
/// determinism certificate vs building the Θ(σ|e|) Glushkov automaton.
fn bench_preprocessing(h: &mut Harness) {
    h.group("E8_preprocessing");
    let sizes: &[usize] = if h.is_fast() { &[1024] } else { &[1024, 8192] };
    for &m in sizes {
        let w = workloads::mixed_content(m);
        h.bench("tree_analysis", m, || TreeAnalysis::build(&w.regex));
        let analysis = TreeAnalysis::build(&w.regex);
        h.bench("determinism_certificate", m, || {
            check_determinism(&analysis).is_ok()
        });
        h.bench("glushkov_automaton", m, || {
            GlushkovAutomaton::build(&w.regex)
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_mixed_content(&mut h);
    bench_families(&mut h);
    bench_preprocessing(&mut h);
    h.finish("determinism");
}
