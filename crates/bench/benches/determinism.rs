//! Criterion benches for experiments E1/E2/E8: determinism testing and
//! preprocessing cost, linear-time algorithms vs the Glushkov baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redet_automata::{glushkov_determinism, GlushkovAutomaton};
use redet_core::check_determinism;
use redet_tree::TreeAnalysis;
use redet_workloads as workloads;
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

/// E1: mixed content (a1 + … + a_m)* — the Glushkov baseline is quadratic,
/// the skeleton test is linear.
fn bench_mixed_content(c: &mut Criterion) {
    let mut group = configure(c).benchmark_group("E1_determinism_mixed_content");
    group.sample_size(10).measurement_time(Duration::from_millis(800));
    for m in [256usize, 1024, 4096] {
        let w = workloads::mixed_content(m);
        group.bench_with_input(BenchmarkId::new("skeleton_linear", m), &w.regex, |b, e| {
            b.iter(|| {
                let analysis = TreeAnalysis::build(e);
                check_determinism(&analysis).is_ok()
            })
        });
        group.bench_with_input(BenchmarkId::new("glushkov_baseline", m), &w.regex, |b, e| {
            b.iter(|| glushkov_determinism(&GlushkovAutomaton::build(e)).is_ok())
        });
    }
    group.finish();
}

/// E2: realistic families (CHARE, k-occurrence, deep alternation).
fn bench_families(c: &mut Criterion) {
    let mut group = configure(c).benchmark_group("E2_determinism_families");
    group.sample_size(10).measurement_time(Duration::from_millis(800));
    let families = [
        ("chare", workloads::chare(400, 5, 1).regex),
        ("k_occurrence_4", workloads::k_occurrence(4, 100, 4, 2).regex),
        ("deep_alternation_16", workloads::deep_alternation(16, 3).regex),
    ];
    for (name, regex) in families {
        group.bench_with_input(BenchmarkId::new("skeleton_linear", name), &regex, |b, e| {
            b.iter(|| {
                let analysis = TreeAnalysis::build(e);
                check_determinism(&analysis).is_ok()
            })
        });
        group.bench_with_input(BenchmarkId::new("glushkov_baseline", name), &regex, |b, e| {
            b.iter(|| glushkov_determinism(&GlushkovAutomaton::build(e)).is_ok())
        });
    }
    group.finish();
}

/// E8: preprocessing cost only (tree analysis vs Glushkov automaton).
fn bench_preprocessing(c: &mut Criterion) {
    let mut group = configure(c).benchmark_group("E8_preprocessing");
    group.sample_size(10).measurement_time(Duration::from_millis(800));
    for m in [1024usize, 8192] {
        let w = workloads::mixed_content(m);
        group.bench_with_input(BenchmarkId::new("tree_analysis", m), &w.regex, |b, e| {
            b.iter(|| TreeAnalysis::build(e))
        });
        group.bench_with_input(BenchmarkId::new("glushkov_automaton", m), &w.regex, |b, e| {
            b.iter(|| GlushkovAutomaton::build(e))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_content, bench_families, bench_preprocessing);
criterion_main!(benches);
