//! A dependency-free micro-benchmark harness.
//!
//! Criterion is not available in offline builds, so the benches use this
//! small stand-in: each benchmark runs a calibration pass to size its
//! batches, then times a fixed number of batches and reports the **median**
//! batch time per iteration (the median is robust against scheduler noise,
//! which is the main hazard without Criterion's outlier analysis). Results
//! are printed as a table and can be written to a JSON report for
//! baseline-vs-branch comparisons (`BENCH_baseline.json`).
//!
//! Environment knobs:
//! * `REDET_BENCH_FAST=1` — shrink batches for smoke-testing the benches;
//! * `REDET_BENCH_JSON_DIR=dir` — write a `BENCH_<bench-name>.json` report
//!   into `dir`.

use std::time::Instant;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark group (e.g. `E4_k_occurrence_matching`).
    pub group: String,
    /// Benchmark name within the group (e.g. `kocc`).
    pub name: String,
    /// The swept parameter value (e.g. `k` or the expression size).
    pub param: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Optional throughput denominator (elements processed per iteration);
    /// when set, the report also contains ns/element.
    pub elements: Option<u64>,
}

/// The harness: collects measurements and renders the report.
#[derive(Debug, Default)]
pub struct Harness {
    fast: bool,
    measurements: Vec<Measurement>,
    group: String,
    elements: Option<u64>,
}

impl Harness {
    /// Creates a harness, honoring `REDET_BENCH_FAST`.
    pub fn new() -> Self {
        Harness {
            fast: std::env::var_os("REDET_BENCH_FAST").is_some(),
            ..Self::default()
        }
    }

    /// Whether the harness is in fast (smoke-test) mode.
    pub fn is_fast(&self) -> bool {
        self.fast
    }

    /// Starts a named benchmark group; subsequent [`Self::bench`] calls are
    /// reported under it.
    pub fn group(&mut self, name: &str) -> &mut Self {
        self.group = name.to_owned();
        self.elements = None;
        self
    }

    /// Sets the throughput denominator for subsequent benchmarks in the
    /// current group.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Times `f` and records the result. `name` identifies the algorithm,
    /// `param` the swept input parameter.
    pub fn bench<T>(&mut self, name: &str, param: impl ToString, mut f: impl FnMut() -> T) {
        // Calibration: find a batch size that runs for ≳1 ms (≳0.1 ms in
        // fast mode) so timer resolution is irrelevant.
        let target_ns = if self.fast { 100_000 } else { 1_000_000 };
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= target_ns || batch >= 1 << 24 {
                break;
            }
            // Grow towards the target with headroom.
            batch = (batch * 4).max(batch + 1);
        }

        // Measurement: several batches, median per-iteration time.
        let samples = if self.fast { 5 } else { 11 };
        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];

        let m = Measurement {
            group: self.group.clone(),
            name: name.to_owned(),
            param: param.to_string(),
            ns_per_iter: median,
            elements: self.elements,
        };
        let per_elem = m
            .elements
            .map(|e| format!("  ({:.2} ns/elem)", m.ns_per_iter / e.max(1) as f64))
            .unwrap_or_default();
        println!(
            "{:<40} {:<24} {:>14.1} ns/iter{per_elem}",
            format!("{}/{}", m.group, m.name),
            m.param,
            m.ns_per_iter
        );
        self.measurements.push(m);
    }

    /// The collected measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Renders the JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            let sep = if i + 1 == self.measurements.len() {
                ""
            } else {
                ","
            };
            let elements = m
                .elements
                .map(|e| e.to_string())
                .unwrap_or_else(|| "null".to_owned());
            out.push_str(&format!(
                "    {{\"group\": {}, \"name\": {}, \"param\": {}, \"ns_per_iter\": {:.1}, \"elements\": {}}}{}\n",
                json_string(&m.group),
                json_string(&m.name),
                json_string(&m.param),
                m.ns_per_iter,
                elements,
                sep,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `<REDET_BENCH_JSON_DIR>/BENCH_<name>.json`
    /// if `REDET_BENCH_JSON_DIR` is set. Call at the end of a bench `main`
    /// with the bench's name.
    pub fn finish(&self, name: &str) {
        if let Some(dir) = std::env::var_os("REDET_BENCH_JSON_DIR") {
            let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
            std::fs::write(&path, self.to_json())
                .unwrap_or_else(|e| eprintln!("failed to write {path:?}: {e}"));
            println!("wrote {}", path.display());
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut h = Harness {
            fast: true,
            ..Harness::default()
        };
        h.group("unit").throughput(4);
        h.bench("add", 1, || std::hint::black_box(1u64) + 1);
        assert_eq!(h.measurements().len(), 1);
        let m = &h.measurements()[0];
        assert!(m.ns_per_iter > 0.0);
        assert_eq!(m.elements, Some(4));
        let json = h.to_json();
        assert!(json.contains("\"group\": \"unit\""));
        assert!(json.contains("\"elements\": 4"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }
}
