//! Bench-smoke regression gate for CI.
//!
//! Usage: `bench_regress <committed-baseline.json> <fresh-run.json>`
//!
//! Compares a fresh `BENCH_matching.json` against the committed baseline for
//! the gated experiment groups (E4, E5, E7, E11) and exits non-zero when any
//! algorithm regresses by more than 25%.
//!
//! Absolute nanosecond numbers are not comparable across machines, so the
//! gate works on **within-group ratios**: for every `(group, param)` pair it
//! relates each algorithm series to the group's DFA baseline series measured
//! in the same run (`kocc` vs `glushkov_dfa`, `path_decomposition` vs
//! `glushkov_dfa`, `batch_single_traversal` vs `word_by_word_dfa`). A
//! regression means the fresh ratio exceeds the committed ratio by more than
//! the threshold — i.e. the algorithm got slower *relative to the same
//! hardware's baseline*.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Groups gated by CI and the substring identifying their reference series.
const GATED_GROUPS: &[&str] = &[
    "E4_k_occurrence_matching",
    "E5_path_decomposition_matching",
    "E7_star_free_multiword",
    "E11_document_validation",
];

/// Allowed relative slowdown before the gate fails.
const THRESHOLD: f64 = 1.25;

#[derive(Clone, Debug)]
struct Entry {
    group: String,
    name: String,
    param: String,
    ns_per_iter: f64,
}

/// Extracts the string value of `"key": "…"` from a JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

/// Extracts the numeric value of `"key": 123.4` from a JSON object line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the report format written by `redet_bench::harness::Harness`.
fn parse_report(path: &str) -> Vec<Entry> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    text.lines()
        .filter_map(|line| {
            Some(Entry {
                group: string_field(line, "group")?,
                name: string_field(line, "name")?,
                param: string_field(line, "param")?,
                ns_per_iter: number_field(line, "ns_per_iter")?,
            })
        })
        .collect()
}

/// Within-group ratios `algorithm / reference` keyed by
/// `(group, param, name)`; the reference series is the one whose name
/// contains `dfa`.
fn ratios(entries: &[Entry]) -> BTreeMap<(String, String, String), f64> {
    let mut reference: BTreeMap<(String, String), f64> = BTreeMap::new();
    for e in entries {
        if GATED_GROUPS.contains(&e.group.as_str()) && e.name.contains("dfa") {
            reference.insert((e.group.clone(), e.param.clone()), e.ns_per_iter);
        }
    }
    let mut out = BTreeMap::new();
    for e in entries {
        if !GATED_GROUPS.contains(&e.group.as_str()) || e.name.contains("dfa") {
            continue;
        }
        if let Some(&base) = reference.get(&(e.group.clone(), e.param.clone())) {
            if base > 0.0 {
                out.insert(
                    (e.group.clone(), e.param.clone(), e.name.clone()),
                    e.ns_per_iter / base,
                );
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_regress <committed-baseline.json> <fresh-run.json>");
        return ExitCode::from(2);
    };

    let baseline = ratios(&parse_report(baseline_path));
    let fresh = ratios(&parse_report(fresh_path));

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<34} {:<10} {:<24} {:>10} {:>10} {:>8}",
        "group", "param", "series", "committed", "fresh", "delta"
    );
    for ((group, param, name), &fresh_ratio) in &fresh {
        let Some(&committed) = baseline.get(&(group.clone(), param.clone(), name.clone())) else {
            println!("{group:<34} {param:<10} {name:<24}        (new series, not gated)");
            continue;
        };
        compared += 1;
        let delta = fresh_ratio / committed;
        let verdict = if delta > THRESHOLD {
            regressions += 1;
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{group:<34} {param:<10} {name:<24} {committed:>9.3}x {fresh_ratio:>9.3}x {:>7.0}%{verdict}",
            (delta - 1.0) * 100.0
        );
    }

    // A gated series present in the committed baseline but absent from the
    // fresh run means the bench was renamed or dropped — the gate must not
    // silently pass with that algorithm unmeasured.
    let mut missing = 0usize;
    for key in baseline.keys() {
        if !fresh.contains_key(key) {
            let (group, param, name) = key;
            eprintln!("gated series missing from fresh run: {group}/{name} (param {param})");
            missing += 1;
        }
    }
    if missing > 0 {
        eprintln!("{missing} committed series are no longer measured — gate cannot pass");
        return ExitCode::from(2);
    }
    if compared == 0 {
        eprintln!("no comparable series between {baseline_path} and {fresh_path}");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        eprintln!(
            "{regressions} series regressed more than {:.0}% relative to the in-group DFA baseline",
            (THRESHOLD - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "no E4/E5/E7/E11 regressions beyond {:.0}%",
        (THRESHOLD - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}
