//! Bench-smoke regression gate for CI.
//!
//! Usage: `bench_regress <committed-baseline.json> <fresh-run.json>`
//!
//! Compares a fresh `BENCH_matching.json` against the committed baseline
//! for the gated experiment groups (E4, E5, E7, E11, E12, E13, E14, E15,
//! E16, E17) and exits non-zero when any algorithm regresses by more
//! than 25%.
//!
//! Absolute nanosecond numbers are not comparable across machines, so the
//! gate works on **within-group ratios**: for every `(group, param)` pair it
//! relates each algorithm series to the group's reference series measured
//! in the same run (`kocc` vs `glushkov_dfa`, `schema_validator` vs
//! `dfa_per_element`, `sharded_pool` vs `single_thread`). A regression means
//! the fresh ratio exceeds the committed ratio by more than the threshold —
//! i.e. the algorithm got slower *relative to the same hardware's
//! baseline*.
//!
//! Some groups additionally carry an **absolute** cap, independent of the
//! committed file: the E11 validator must stay within [`E11_MAX_RATIO`]× of
//! the raw DFA-per-element stack (the paper's promise is DFA-like speed
//! with `O(|e|)` preprocessing), the E12 sharded pool must beat the
//! single-threaded loop at its widest sweep point (batch validation must
//! actually scale), E13 interleaved event serving must stay within
//! [`E13_MAX_RATIO`]× of the per-document validator loop (parking and
//! resuming documents per chunk must stay near-free), and E13 raw-byte
//! ingestion must stay within [`E13_BYTES_MAX_RATIO`]× of event-level
//! serving (the bulk-scanning tokenizer keeps bytes first-class). E14
//! ratio-gates the bulk tokenizer against its byte-at-a-time scalar oracle
//! so the SWAR scanner cannot quietly regress toward scalar speed. E15
//! ratio-gates the resource-governance series against ungoverned serving,
//! with an absolute cap ([`E15_GOVERNED_MAX_RATIO`]) pinning the limit
//! bookkeeping (depth/byte/event accounting plus admission checks at the
//! handle-capacity edge) to near-zero overhead. E16 ratio-gates the
//! full-markup serving series (attribute/text events, attribute-dense tag
//! soup, and the entity-decode byte shape) against the per-document
//! validator reference over the same enriched corpus. E17 ratio-gates
//! registry-handle opens (`SharedSchema` load + validator) against
//! direct validator construction, with an absolute cap
//! ([`E17_HANDLE_OPEN_MAX_RATIO`]) bounding the read-lock + `Arc` clone
//! per open to tens of nanoseconds; its rehash, compile, and swap series
//! are measured but not gated (they live at their own params).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Groups gated by CI, each with the substring identifying its in-group
/// reference series.
const GATED_GROUPS: &[(&str, &str)] = &[
    ("E4_k_occurrence_matching", "dfa"),
    ("E5_path_decomposition_matching", "dfa"),
    ("E7_star_free_multiword", "dfa"),
    ("E11_document_validation", "dfa"),
    ("E12_batch_validation", "single_thread"),
    ("E13_interleaved_serving", "per_document"),
    ("E14_tokenizer_throughput", "scalar"),
    ("E15_overload_serving", "feed_unlimited"),
    ("E16_markup_coverage", "per_document"),
    ("E17_schema_registry", "open_direct"),
];

/// Allowed relative slowdown before the gate fails.
const THRESHOLD: f64 = 1.25;

/// Absolute cap on `schema_validator / dfa_per_element` (E11): the
/// validator adds schema semantics (counted models, diagnostics, recycled
/// frames) but must stay in the DFA's ballpark.
const E11_MAX_RATIO: f64 = 2.0;

/// Absolute cap on `service_interleaved / per_document` (E13): feeding N
/// interleaved documents in 64-event chunks through the connection service
/// must stay within this factor of validating them one after another —
/// the acceptance criterion of the connection-oriented redesign.
const E13_MAX_RATIO: f64 = 1.5;

/// Absolute cap on `service_bytes / service_interleaved` (E13): feeding the
/// same corpus as raw tag soup must stay within this factor of feeding it
/// as pre-parsed events — the bulk-scanning tokenizer's acceptance
/// criterion (it was ~3.4× with the byte-at-a-time scanner).
const E13_BYTES_MAX_RATIO: f64 = 1.6;

/// The E12 `sharded_pool / single_thread` ratio at the largest measured
/// worker count must clear this bar — more workers must actually help,
/// with headroom below break-even so scheduler noise on a shared runner
/// cannot flip the verdict (real scaling on the full corpus sits well
/// under this).
const E12_MAX_SCALED_RATIO: f64 = 0.85;

/// Absolute cap on `feed_governed / feed_unlimited` (E15): running the
/// identical interleaved corpus with every `ServiceLimits` cap configured
/// (none firing) and admission at the handle-capacity edge must cost at
/// most this factor — resource governance is bookkeeping, not work.
const E15_GOVERNED_MAX_RATIO: f64 = 1.3;

/// Absolute cap on `open_handle / open_direct` (E17): obtaining a
/// validator through a published `SharedSchema` handle (read lock +
/// `Arc` clone) must stay within this factor of constructing one from an
/// already-held `Arc<Schema>`. The reference is a ~30 ns construction on
/// the tiny corpus schemas, so the cap bounds the hot-swap indirection to
/// a few tens of nanoseconds — it fires if the handle ever regresses to
/// heavier synchronization (contended locks, extra allocation), while the
/// committed-ratio gate catches smaller drift.
const E17_HANDLE_OPEN_MAX_RATIO: f64 = 2.5;

#[derive(Clone, Debug)]
struct Entry {
    group: String,
    name: String,
    param: String,
    ns_per_iter: f64,
}

/// Extracts the string value of `"key": "…"` from a JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

/// Extracts the numeric value of `"key": 123.4` from a JSON object line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the report format written by `redet_bench::harness::Harness`.
fn parse_report(path: &str) -> Vec<Entry> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    text.lines()
        .filter_map(|line| {
            Some(Entry {
                group: string_field(line, "group")?,
                name: string_field(line, "name")?,
                param: string_field(line, "param")?,
                ns_per_iter: number_field(line, "ns_per_iter")?,
            })
        })
        .collect()
}

/// The reference-series substring of a gated group, if the group is gated.
fn reference_marker(group: &str) -> Option<&'static str> {
    GATED_GROUPS
        .iter()
        .find(|(g, _)| *g == group)
        .map(|(_, marker)| *marker)
}

/// Within-group ratios `algorithm / reference` keyed by
/// `(group, param, name)`; each group names its own reference series (see
/// [`GATED_GROUPS`]).
fn ratios(entries: &[Entry]) -> BTreeMap<(String, String, String), f64> {
    let mut reference: BTreeMap<(String, String), f64> = BTreeMap::new();
    for e in entries {
        if reference_marker(&e.group).is_some_and(|m| e.name.contains(m)) {
            reference.insert((e.group.clone(), e.param.clone()), e.ns_per_iter);
        }
    }
    let mut out = BTreeMap::new();
    for e in entries {
        let Some(marker) = reference_marker(&e.group) else {
            continue;
        };
        if e.name.contains(marker) {
            continue;
        }
        if let Some(&base) = reference.get(&(e.group.clone(), e.param.clone())) {
            if base > 0.0 {
                out.insert(
                    (e.group.clone(), e.param.clone(), e.name.clone()),
                    e.ns_per_iter / base,
                );
            }
        }
    }
    out
}

/// Absolute-cap checks on the fresh ratios (see the module docs): E11 must
/// stay within [`E11_MAX_RATIO`]× of the raw DFA stack, E12 must beat
/// single-threaded validation at the largest worker count, and the E13
/// serving caps pin event-level overhead ([`E13_MAX_RATIO`]) and raw-byte
/// ingestion ([`E13_BYTES_MAX_RATIO`]). Returns the number of violations.
fn absolute_caps(fresh: &BTreeMap<(String, String, String), f64>) -> usize {
    let mut violations = 0usize;
    for ((group, param, name), &ratio) in fresh {
        if group == "E11_document_validation" && ratio > E11_MAX_RATIO {
            eprintln!(
                "E11 cap: {name} (param {param}) is {ratio:.2}x the DFA-per-element \
                 baseline (cap {E11_MAX_RATIO}x)"
            );
            violations += 1;
        }
        if group == "E17_schema_registry"
            && name.contains("open_handle")
            && ratio > E17_HANDLE_OPEN_MAX_RATIO
        {
            eprintln!(
                "E17 cap: {name} (param {param}) is {ratio:.2}x a direct validator \
                 construction (cap {E17_HANDLE_OPEN_MAX_RATIO}x) — the hot-swap handle \
                 open path is not near-free"
            );
            violations += 1;
        }
        if group == "E15_overload_serving"
            && name.contains("governed")
            && ratio > E15_GOVERNED_MAX_RATIO
        {
            eprintln!(
                "E15 cap: {name} (param {param}) is {ratio:.2}x ungoverned serving \
                 (cap {E15_GOVERNED_MAX_RATIO}x) — limit bookkeeping is not near-free"
            );
            violations += 1;
        }
        if group == "E13_interleaved_serving"
            && name.contains("interleaved")
            && ratio > E13_MAX_RATIO
        {
            eprintln!(
                "E13 cap: {name} (param {param}) is {ratio:.2}x the per-document \
                 validator loop (cap {E13_MAX_RATIO}x)"
            );
            violations += 1;
        }
        // The byte-ingestion series pays the tokenizer on top; relate it to
        // the event-level series measured in the same run (both ratios share
        // the per-document reference, so their quotient cancels it out).
        if group == "E13_interleaved_serving" && name.contains("bytes") {
            if let Some(&interleaved) = fresh.get(&(
                group.clone(),
                param.clone(),
                "service_interleaved".to_owned(),
            )) {
                let relative = ratio / interleaved;
                if relative > E13_BYTES_MAX_RATIO {
                    eprintln!(
                        "E13 bytes cap: {name} (param {param}) is {relative:.2}x the \
                         event-level interleaved series (cap {E13_BYTES_MAX_RATIO}x)"
                    );
                    violations += 1;
                }
            }
        }
    }
    // E12: the widest sweep point is the numerically largest param. The
    // bench only sweeps past one worker when the machine has the
    // parallelism, so a single-point sweep (single-core runner) leaves the
    // scaling cap unexercised rather than failing vacuously.
    let widest = fresh
        .iter()
        .filter(|((group, _, _), _)| group == "E12_batch_validation")
        .max_by_key(|((_, param, _), _)| param.parse::<u64>().unwrap_or(0));
    if let Some(((_, param, name), &ratio)) = widest {
        if param.parse::<u64>().unwrap_or(0) >= 2 && ratio > E12_MAX_SCALED_RATIO {
            eprintln!(
                "E12 cap: {name} with {param} workers is {ratio:.2}x the single-threaded \
                 loop — batch validation is not scaling"
            );
            violations += 1;
        }
    }
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_regress <committed-baseline.json> <fresh-run.json>");
        return ExitCode::from(2);
    };

    let baseline = ratios(&parse_report(baseline_path));
    let fresh = ratios(&parse_report(fresh_path));

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<34} {:<10} {:<24} {:>10} {:>10} {:>8}",
        "group", "param", "series", "committed", "fresh", "delta"
    );
    for ((group, param, name), &fresh_ratio) in &fresh {
        let Some(&committed) = baseline.get(&(group.clone(), param.clone(), name.clone())) else {
            println!("{group:<34} {param:<10} {name:<24}        (new series, not gated)");
            continue;
        };
        compared += 1;
        let delta = fresh_ratio / committed;
        let verdict = if delta > THRESHOLD {
            regressions += 1;
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{group:<34} {param:<10} {name:<24} {committed:>9.3}x {fresh_ratio:>9.3}x {:>7.0}%{verdict}",
            (delta - 1.0) * 100.0
        );
    }

    // A gated series present in the committed baseline but absent from the
    // fresh run means the bench was renamed or dropped — the gate must not
    // silently pass with that algorithm unmeasured.
    let mut missing = 0usize;
    for key in baseline.keys() {
        if !fresh.contains_key(key) {
            let (group, param, name) = key;
            eprintln!("gated series missing from fresh run: {group}/{name} (param {param})");
            missing += 1;
        }
    }
    if missing > 0 {
        eprintln!("{missing} committed series are no longer measured — gate cannot pass");
        return ExitCode::from(2);
    }
    if compared == 0 {
        eprintln!("no comparable series between {baseline_path} and {fresh_path}");
        return ExitCode::from(2);
    }
    let capped = absolute_caps(&fresh);
    if regressions > 0 || capped > 0 {
        if regressions > 0 {
            eprintln!(
                "{regressions} series regressed more than {:.0}% relative to the in-group \
                 reference baseline",
                (THRESHOLD - 1.0) * 100.0
            );
        }
        if capped > 0 {
            eprintln!(
                "{capped} absolute cap(s) violated (E11 ratio / E12 scaling / E13 bytes / \
                 E15 governance / E17 cached opens)"
            );
        }
        return ExitCode::FAILURE;
    }
    println!(
        "no E4/E5/E7/E11/E12/E13/E14/E15/E16/E17 regressions beyond {:.0}%; absolute caps hold",
        (THRESHOLD - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}
