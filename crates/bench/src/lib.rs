//! Shared helpers for the benchmark harness and the experiment runner.
//!
//! The paper contains no measurement tables; its experimental content is a
//! set of complexity claims. This crate provides the glue shared by the
//! benches and by the `experiments` binary that prints the claim-by-claim
//! comparison tables:
//!
//! * [`compile_workload`] — run a generated workload through the shared
//!   compilation pipeline once, producing the [`CompiledAnalysis`] artifact
//!   every matcher is constructed from (compile-once / match-many is what
//!   the benches measure);
//! * matcher constructors over the artifact;
//! * [`harness`] — a dependency-free micro-benchmark harness (median of
//!   timed batches) with a JSON report, standing in for Criterion, which is
//!   unavailable in offline builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use redet_core::matcher::colored::ColoredAncestorMatcher;
use redet_core::matcher::kocc::KOccurrenceMatcher;
use redet_core::matcher::pathdecomp::PathDecompositionMatcher;
use redet_core::matcher::starfree::StarFreeMatcher;
use redet_core::matcher::PositionMatcher;
use redet_core::CompiledAnalysis;
use redet_workloads::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measures the wall-clock time of `f`, repeated `repeats` times, returning
/// the *average* duration per repetition.
pub fn time<T>(repeats: usize, mut f: impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(f());
    }
    start.elapsed() / repeats.max(1) as u32
}

/// Formats a duration in microseconds with three significant digits.
pub fn micros(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// Runs a generated workload through the full compilation pipeline exactly
/// once: interning is already done by the generator, so this performs the
/// normalize → analyze → certify stages and returns the shared artifact.
pub fn compile_workload(workload: &Workload) -> Arc<CompiledAnalysis> {
    CompiledAnalysis::from_regex(workload.regex.clone(), workload.alphabet.clone())
        .expect("benchmark workloads are deterministic")
}

/// Bounded-occurrence matcher (Theorem 4.3) over the shared artifact.
pub fn kocc_matcher(compiled: &CompiledAnalysis) -> PositionMatcher<KOccurrenceMatcher> {
    PositionMatcher::new(KOccurrenceMatcher::from_compiled(compiled))
}

/// Path-decomposition matcher (Theorem 4.10) over the shared artifact.
pub fn pathdecomp_matcher(
    compiled: &CompiledAnalysis,
) -> PositionMatcher<PathDecompositionMatcher> {
    PositionMatcher::new(
        PathDecompositionMatcher::from_compiled(compiled).expect("workloads are counting-free"),
    )
}

/// Lowest-colored-ancestor matcher (Theorem 4.2) over the shared artifact.
pub fn colored_matcher(compiled: &CompiledAnalysis) -> PositionMatcher<ColoredAncestorMatcher> {
    PositionMatcher::new(
        ColoredAncestorMatcher::from_compiled(compiled)
            .expect("counting-free workloads carry a certificate"),
    )
}

/// Star-free matcher (Theorem 4.12) over the shared artifact.
pub fn starfree_matcher(compiled: &CompiledAnalysis) -> StarFreeMatcher {
    StarFreeMatcher::from_compiled(compiled).expect("workload is star-free")
}

/// Prints a Markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_automata::Matcher;
    use redet_workloads as workloads;

    #[test]
    fn helpers_build_working_matchers_from_one_artifact() {
        let w = workloads::chare(10, 3, 1);
        let compiled = compile_workload(&w);
        let word = workloads::sample_member_word(&w.regex, 30, 7);
        let kocc = kocc_matcher(&compiled);
        let path = pathdecomp_matcher(&compiled);
        let colored = colored_matcher(&compiled);
        assert!(kocc.matches(&word));
        assert!(path.matches(&word));
        assert!(colored.matches(&word));
        // All three share the same underlying analysis allocation.
        use redet_core::TransitionSim;
        assert!(std::ptr::eq(
            compiled.analysis().as_ref(),
            kocc.sim().analysis()
        ));
        assert!(std::ptr::eq(
            compiled.analysis().as_ref(),
            colored.sim().analysis()
        ));
    }

    #[test]
    fn timing_helper_runs() {
        let d = time(3, || 1 + 1);
        assert!(d.as_nanos() < 1_000_000_000);
        assert!(!micros(d).is_empty());
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
