//! Shared helpers for the benchmark harness and the experiment runner.
//!
//! The paper contains no measurement tables; its experimental content is a
//! set of complexity claims. This crate provides the glue shared by the
//! benches and by the `experiments` binary that prints the claim-by-claim
//! comparison tables:
//!
//! * [`compile_workload`] — run a generated workload through the shared
//!   compilation pipeline once, producing the [`CompiledAnalysis`] artifact
//!   every matcher is constructed from (compile-once / match-many is what
//!   the benches measure);
//! * matcher constructors over the artifact;
//! * [`harness`] — a dependency-free micro-benchmark harness (median of
//!   timed batches) with a JSON report, standing in for Criterion, which is
//!   unavailable in offline builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use redet_core::matcher::colored::ColoredAncestorMatcher;
use redet_core::matcher::kocc::KOccurrenceMatcher;
use redet_core::matcher::pathdecomp::PathDecompositionMatcher;
use redet_core::matcher::starfree::StarFreeMatcher;
use redet_core::matcher::PositionMatcher;
use redet_core::CompiledAnalysis;
use redet_workloads::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measures the wall-clock time of `f`, repeated `repeats` times, returning
/// the *average* duration per repetition.
pub fn time<T>(repeats: usize, mut f: impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(f());
    }
    start.elapsed() / repeats.max(1) as u32
}

/// Formats a duration in microseconds with three significant digits.
pub fn micros(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// Runs a generated workload through the full compilation pipeline exactly
/// once: interning is already done by the generator, so this performs the
/// normalize → analyze → certify stages and returns the shared artifact.
pub fn compile_workload(workload: &Workload) -> Arc<CompiledAnalysis> {
    CompiledAnalysis::from_regex(workload.regex.clone(), workload.alphabet.clone())
        .expect("benchmark workloads are deterministic")
}

/// Bounded-occurrence matcher (Theorem 4.3) over the shared artifact.
pub fn kocc_matcher(compiled: &CompiledAnalysis) -> PositionMatcher<KOccurrenceMatcher> {
    PositionMatcher::new(KOccurrenceMatcher::from_compiled(compiled))
}

/// Path-decomposition matcher (Theorem 4.10) over the shared artifact.
pub fn pathdecomp_matcher(
    compiled: &CompiledAnalysis,
) -> PositionMatcher<PathDecompositionMatcher> {
    PositionMatcher::new(
        PathDecompositionMatcher::from_compiled(compiled).expect("workloads are counting-free"),
    )
}

/// Lowest-colored-ancestor matcher (Theorem 4.2) over the shared artifact.
pub fn colored_matcher(compiled: &CompiledAnalysis) -> PositionMatcher<ColoredAncestorMatcher> {
    PositionMatcher::new(
        ColoredAncestorMatcher::from_compiled(compiled)
            .expect("counting-free workloads carry a certificate"),
    )
}

/// Star-free matcher (Theorem 4.12) over the shared artifact.
pub fn starfree_matcher(compiled: &CompiledAnalysis) -> StarFreeMatcher {
    StarFreeMatcher::from_compiled(compiled).expect("workload is star-free")
}

/// Prints a Markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// One pre-interned document event, re-exported from `redet-schema` — the
/// form the validation hot loop and the batch API consume.
pub use redet_schema::DocEvent;

/// The fixed character-data run [`events_to_xml`] writes for every
/// [`DocEvent::Text`] — entity-free, so the byte path tokenizes it into
/// exactly one text event and verdicts stay transport-independent.
pub const TEXT_RUN: &str = "The quick brown fox jumps over the lazy dog.";

/// Serializes a pre-interned event stream back to plain tag soup, the
/// inverse the byte-ingestion surfaces consume — the E13/E16 benches and
/// the allocation regression pipe it back through
/// `ValidationService::feed_bytes`.
///
/// Full markup round-trips: `Attr` events render as ` name="name"` inside
/// the pending start tag, `Text` events as [`TEXT_RUN`], and an open tag
/// whose next structural event is its close collapses to the self-closing
/// `<name …/>` form. The serialization is deterministic, and feeding it
/// back yields the verdict of the original event stream.
pub fn events_to_xml(schema: &redet_schema::Schema, events: &[DocEvent]) -> String {
    let mut out = String::new();
    let mut stack: Vec<&str> = Vec::new();
    // An open tag is held unterminated until the first non-attribute event
    // decides between `>` and the self-closing `/>`.
    let mut pending = false;
    for event in events {
        match event {
            DocEvent::Open(sym) => {
                if pending {
                    out.push('>');
                }
                let name = schema.name(*sym);
                out.push('<');
                out.push_str(name);
                stack.push(name);
                pending = true;
            }
            DocEvent::Attr(sym) => {
                assert!(pending, "attribute events follow their open event");
                let name = schema.name(*sym);
                out.push(' ');
                out.push_str(name);
                out.push_str("=\"");
                out.push_str(name);
                out.push('"');
            }
            DocEvent::Text => {
                if pending {
                    out.push('>');
                    pending = false;
                }
                out.push_str(TEXT_RUN);
            }
            DocEvent::Close => {
                let name = stack.pop().expect("balanced event stream");
                if pending {
                    out.push_str("/>");
                    pending = false;
                } else {
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
            _ => unreachable!("the generators emit only the four event kinds"),
        }
    }
    if pending {
        out.push('>'); // truncated stream ends inside a start tag
    }
    out
}

/// Generates a random, **schema-valid** document against
/// [`redet_workloads::BOOK_DTD`] as a pre-interned event stream: a book
/// with `chapters` chapters, randomly nested sections (depth ≤ 3), lists,
/// tables, figures, and a back-matter index whose entries exercise the
/// counted `locator{1,4}` model. Used by the E11 `document_validation`
/// benchmark and its DFA-per-element baseline.
pub fn book_document_events(
    schema: &redet_schema::Schema,
    chapters: usize,
    seed: u64,
) -> Vec<DocEvent> {
    use redet_workloads::rng::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let s = |name: &str| schema.lookup(name).expect("BOOK_DTD element");
    let (book, front, body, back) = (s("book"), s("front"), s("body"), s("back"));
    let (title, subtitle, author, date) = (s("title"), s("subtitle"), s("author"), s("date"));
    let (chapter, epigraph, section, interlude) =
        (s("chapter"), s("epigraph"), s("section"), s("interlude"));
    let (para, list, item, table, row_, figure, caption, code, attribution) = (
        s("para"),
        s("list"),
        s("item"),
        s("table"),
        s("row"),
        s("figure"),
        s("caption"),
        s("code"),
        s("attribution"),
    );
    let (appendix, index, entry, term, locator, cell) = (
        s("appendix"),
        s("index"),
        s("entry"),
        s("term"),
        s("locator"),
        s("cell"),
    );

    let mut events: Vec<DocEvent> = Vec::new();
    fn open(events: &mut Vec<DocEvent>, sym: redet_syntax::Symbol) {
        events.push(DocEvent::Open(sym));
    }
    fn close(events: &mut Vec<DocEvent>) {
        events.push(DocEvent::Close);
    }
    fn leaf(events: &mut Vec<DocEvent>, sym: redet_syntax::Symbol) {
        open(events, sym);
        close(events);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_section(
        events: &mut Vec<DocEvent>,
        rng: &mut StdRng,
        depth: usize,
        section: redet_syntax::Symbol,
        title: redet_syntax::Symbol,
        blocks: &[redet_syntax::Symbol; 4],
        item: redet_syntax::Symbol,
        row_: redet_syntax::Symbol,
        cell: redet_syntax::Symbol,
        caption: redet_syntax::Symbol,
    ) {
        let [para, list, table, figure] = *blocks;
        open(events, section);
        leaf(events, title);
        for _ in 0..rng.gen_range(1..6usize) {
            match rng.gen_range(0..8usize) {
                0 => {
                    open(events, list);
                    for _ in 0..rng.gen_range(1..4usize) {
                        leaf(events, item);
                    }
                    close(events);
                }
                1 => {
                    open(events, table);
                    if rng.gen_bool(0.5) {
                        leaf(events, caption);
                    }
                    for _ in 0..rng.gen_range(1..3usize) {
                        open(events, row_);
                        for _ in 0..rng.gen_range(1..4usize) {
                            leaf(events, cell);
                        }
                        close(events);
                    }
                    close(events);
                }
                2 => {
                    open(events, figure);
                    if rng.gen_bool(0.5) {
                        leaf(events, caption);
                    }
                    close(events);
                }
                3 if depth > 0 => {
                    emit_section(
                        events,
                        rng,
                        depth - 1,
                        section,
                        title,
                        blocks,
                        item,
                        row_,
                        cell,
                        caption,
                    );
                }
                _ => leaf(events, para),
            }
        }
        close(events);
    }

    open(&mut events, book);
    // Front matter.
    open(&mut events, front);
    leaf(&mut events, title);
    if rng.gen_bool(0.5) {
        leaf(&mut events, subtitle);
    }
    for _ in 0..rng.gen_range(1..4usize) {
        leaf(&mut events, author);
    }
    if rng.gen_bool(0.5) {
        leaf(&mut events, date);
    }
    close(&mut events);
    // Body.
    open(&mut events, body);
    let blocks = [para, list, table, figure];
    let _ = code; // mixed-content child of <para>; paras stay childless here
    for _ in 0..chapters.max(1) {
        open(&mut events, chapter);
        leaf(&mut events, title);
        if rng.gen_bool(0.3) {
            open(&mut events, epigraph);
            leaf(&mut events, para);
            if rng.gen_bool(0.5) {
                leaf(&mut events, attribution);
            }
            close(&mut events);
        }
        for _ in 0..rng.gen_range(1..4usize) {
            if rng.gen_bool(0.15) {
                open(&mut events, interlude);
                for _ in 0..rng.gen_range(1..3usize) {
                    leaf(&mut events, para);
                }
                close(&mut events);
            } else {
                emit_section(
                    &mut events,
                    &mut rng,
                    2,
                    section,
                    title,
                    &blocks,
                    item,
                    row_,
                    cell,
                    caption,
                );
            }
        }
        close(&mut events);
    }
    close(&mut events);
    // Back matter: appendices and the index with counted locators.
    open(&mut events, back);
    for _ in 0..rng.gen_range(0..3usize) {
        open(&mut events, appendix);
        leaf(&mut events, title);
        for _ in 0..rng.gen_range(0..3usize) {
            leaf(&mut events, para);
        }
        close(&mut events);
    }
    open(&mut events, index);
    for _ in 0..rng.gen_range(2..8usize) {
        open(&mut events, entry);
        leaf(&mut events, term);
        for _ in 0..rng.gen_range(1..5usize) {
            leaf(&mut events, locator);
        }
        close(&mut events);
    }
    close(&mut events);
    close(&mut events);
    close(&mut events); // </book>
    events
}

/// Enriches an element-only [`book_document_events`] stream with the full
/// markup surface: declared attributes (all `#IMPLIED` in
/// [`redet_workloads::BOOK_DTD`]) after a fraction of the open events, and
/// character data inside the `(#PCDATA)` leaves. The result stays
/// schema-valid; it drives the E16 full-markup benchmark, the service
/// equivalence corpus, and the allocation regression.
pub fn book_markup_events(
    schema: &redet_schema::Schema,
    chapters: usize,
    seed: u64,
) -> Vec<DocEvent> {
    use redet_workloads::rng::StdRng;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA77);
    let base = book_document_events(schema, chapters, seed);
    let s = |name: &str| schema.lookup(name).expect("BOOK_DTD name");
    // (element, its declared attributes) — mirrors the `<!ATTLIST …>` block
    // of `BOOK_DTD`; attribute names live in the same interned alphabet as
    // element names.
    let declared: [(redet_syntax::Symbol, Vec<redet_syntax::Symbol>); 6] = [
        (s("book"), vec![s("lang"), s("edition")]),
        (s("chapter"), vec![s("id")]),
        (s("section"), vec![s("id")]),
        (s("figure"), vec![s("src"), s("width")]),
        (s("para"), vec![s("role")]),
        (s("locator"), vec![s("page")]),
    ];
    let text_leaves = [
        s("title"),
        s("subtitle"),
        s("author"),
        s("date"),
        s("para"),
        s("caption"),
    ];
    let mut events = Vec::with_capacity(base.len() * 2);
    for (i, event) in base.iter().enumerate() {
        events.push(*event);
        if let DocEvent::Open(sym) = event {
            if let Some((_, attrs)) = declared.iter().find(|(elem, _)| elem == sym) {
                for attr in attrs {
                    if rng.gen_bool(0.6) {
                        events.push(DocEvent::Attr(*attr));
                    }
                }
            }
            // One text event per `(#PCDATA)` leaf: the byte path coalesces
            // a contiguous character-data run into a single event, so the
            // generator never emits two in a row.
            if text_leaves.contains(sym)
                && matches!(base.get(i + 1), Some(DocEvent::Close))
                && rng.gen_bool(0.8)
            {
                events.push(DocEvent::Text);
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_automata::Matcher;
    use redet_workloads as workloads;

    #[test]
    fn helpers_build_working_matchers_from_one_artifact() {
        let w = workloads::chare(10, 3, 1);
        let compiled = compile_workload(&w);
        let word = workloads::sample_member_word(&w.regex, 30, 7);
        let kocc = kocc_matcher(&compiled);
        let path = pathdecomp_matcher(&compiled);
        let colored = colored_matcher(&compiled);
        assert!(kocc.matches(&word));
        assert!(path.matches(&word));
        assert!(colored.matches(&word));
        // All three share the same underlying analysis allocation.
        use redet_core::TransitionSim;
        assert!(std::ptr::eq(
            compiled.analysis().as_ref(),
            kocc.sim().analysis()
        ));
        assert!(std::ptr::eq(
            compiled.analysis().as_ref(),
            colored.sim().analysis()
        ));
    }

    #[test]
    fn generated_book_documents_are_valid() {
        let schema = redet_schema::SchemaBuilder::new()
            .parse_dtd(redet_workloads::BOOK_DTD)
            .build()
            .expect("BOOK_DTD compiles");
        let mut validator = schema.validator();
        for seed in 0..5u64 {
            let events = book_document_events(&schema, 3, seed);
            assert!(events.len() > 50, "seed {seed}: document too small");
            if let Err(diags) = validator.validate_events(&events) {
                panic!("seed {seed}: generated document invalid: {diags:?}");
            }
        }
    }

    #[test]
    fn markup_documents_are_valid_and_round_trip_through_bytes() {
        let schema = redet_schema::SchemaBuilder::new()
            .parse_dtd(redet_workloads::BOOK_DTD)
            .build()
            .expect("BOOK_DTD compiles");
        let mut validator = schema.validator();
        let mut service = schema.service();
        for seed in 0..5u64 {
            let events = book_markup_events(&schema, 2, seed);
            assert!(
                events.iter().any(|e| matches!(e, DocEvent::Attr(_)))
                    && events.iter().any(|e| matches!(e, DocEvent::Text)),
                "seed {seed}: markup stream carries attributes and text"
            );
            if let Err(diags) = validator.validate_events(&events) {
                panic!("seed {seed}: markup document invalid: {diags:?}");
            }
            // The serialized form validates over the byte path too.
            let xml = events_to_xml(&schema, &events);
            assert!(xml.contains(" lang=\"lang\"") || xml.contains(" id=\"id\""));
            assert!(xml.contains(TEXT_RUN));
            let doc = service.open();
            let _ = service.feed_bytes(doc, xml.as_bytes());
            assert!(service.finish(doc).is_ok(), "seed {seed}: bytes invalid");
        }
    }

    #[test]
    fn timing_helper_runs() {
        let d = time(3, || 1 + 1);
        assert!(d.as_nanos() < 1_000_000_000);
        assert!(!micros(d).is_empty());
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
