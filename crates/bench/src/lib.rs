//! Shared helpers for the benchmark harness and the experiment runner.
//!
//! The paper contains no measurement tables; its experimental content is a
//! set of complexity claims (see `EXPERIMENTS.md` at the workspace root).
//! This crate provides the glue shared by the Criterion benches and by the
//! `experiments` binary that prints the claim-by-claim comparison tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use redet_core::determinism::DeterminismCertificate;
use redet_core::matcher::colored::ColoredAncestorMatcher;
use redet_core::matcher::kocc::KOccurrenceMatcher;
use redet_core::matcher::pathdecomp::PathDecompositionMatcher;
use redet_core::matcher::PositionMatcher;
use redet_core::check_determinism;
use redet_syntax::Regex;
use redet_tree::TreeAnalysis;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measures the wall-clock time of `f`, repeated `repeats` times, returning
/// the *average* duration per repetition.
pub fn time<T>(repeats: usize, mut f: impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(f());
    }
    start.elapsed() / repeats.max(1) as u32
}

/// Formats a duration in microseconds with three significant digits.
pub fn micros(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// Builds the full preprocessing pipeline of the linear-time algorithms for
/// a deterministic expression: analysis + certificate.
pub fn preprocess(regex: &Regex) -> (Arc<TreeAnalysis>, Arc<DeterminismCertificate>) {
    let analysis = Arc::new(TreeAnalysis::build(regex));
    let certificate = Arc::new(check_determinism(&analysis).expect("workloads are deterministic"));
    (analysis, certificate)
}

/// Convenience constructors for the three position-based matchers used
/// throughout the experiments.
pub fn kocc_matcher(analysis: Arc<TreeAnalysis>) -> PositionMatcher<KOccurrenceMatcher> {
    PositionMatcher::new(KOccurrenceMatcher::new(analysis))
}

/// Path-decomposition matcher wrapped for word matching.
pub fn pathdecomp_matcher(
    analysis: Arc<TreeAnalysis>,
) -> PositionMatcher<PathDecompositionMatcher> {
    PositionMatcher::new(PathDecompositionMatcher::new(analysis).expect("workloads are counting-free"))
}

/// Lowest-colored-ancestor matcher wrapped for word matching.
pub fn colored_matcher(
    analysis: Arc<TreeAnalysis>,
    certificate: Arc<DeterminismCertificate>,
) -> PositionMatcher<ColoredAncestorMatcher> {
    PositionMatcher::new(ColoredAncestorMatcher::new(analysis, certificate))
}

/// Prints a Markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_automata::Matcher;
    use redet_workloads as workloads;

    #[test]
    fn helpers_build_working_matchers() {
        let w = workloads::chare(10, 3, 1);
        let (analysis, certificate) = preprocess(&w.regex);
        let word = workloads::sample_member_word(&w.regex, 30, 7);
        let kocc = kocc_matcher(analysis.clone());
        let path = pathdecomp_matcher(analysis.clone());
        let colored = colored_matcher(analysis, certificate);
        assert!(kocc.matches(&word));
        assert!(path.matches(&word));
        assert!(colored.matches(&word));
    }

    #[test]
    fn timing_helper_runs() {
        let d = time(3, || 1 + 1);
        assert!(d.as_nanos() < 1_000_000_000);
        assert!(!micros(d).is_empty());
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
