//! The preprocessed bundle: parse tree + LCA + node properties, offering the
//! constant-time `checkIfFollow` primitive of Theorem 2.4.

use crate::flat::FlatTables;
use crate::lca::Lca;
use crate::node::{NodeId, NodeKind, PosId};
use crate::parse_tree::ParseTree;
use crate::props::NodeProps;
use redet_syntax::{Regex, Symbol};

/// How a position `q` follows a position `p` (Lemma 2.2): through a
/// concatenation node, through an iterating node (`∗` / `{i,j}` with
/// `j ≥ 2`), or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FollowKind {
    /// `q ∈ Follow·(p)`: via the concatenation at `LCA(p, q)`.
    Concat,
    /// `q ∈ Follow∗(p)`: via the lowest iterating ancestor of `LCA(p, q)`.
    Star,
    /// Both conditions of Lemma 2.2 hold simultaneously.
    Both,
}

/// A parse tree preprocessed in `O(|e|)` time for constant-time structural
/// queries (Theorem 2.4).
///
/// This is the substrate shared by the determinism test and all matchers:
/// it owns the [`ParseTree`], the [`Lca`] structure, and the [`NodeProps`].
///
/// ```
/// use redet_syntax::parse;
/// use redet_tree::TreeAnalysis;
///
/// let (e, sigma) = parse("(a b + b b? a)*").unwrap();
/// let analysis = TreeAnalysis::build(&e);
/// let tree = analysis.tree();
/// let b3 = tree.positions_of_symbol(sigma.lookup("b").unwrap())[1];
/// let b4 = tree.positions_of_symbol(sigma.lookup("b").unwrap())[2];
/// let a5 = tree.positions_of_symbol(sigma.lookup("a").unwrap())[1];
/// // Follow(p3) = {p4, p5} in Example 2.1.
/// assert!(analysis.check_if_follow(b3, b4));
/// assert!(analysis.check_if_follow(b3, a5));
/// assert!(!analysis.check_if_follow(b4, b3));
/// ```
#[derive(Clone, Debug)]
pub struct TreeAnalysis {
    tree: ParseTree,
    lca: Lca,
    props: NodeProps,
    flat: FlatTables,
}

impl TreeAnalysis {
    /// Builds the parse tree of `regex` (adding the R1 markers) and
    /// preprocesses it. `O(|regex|)`.
    pub fn build(regex: &Regex) -> Self {
        Self::from_tree(ParseTree::build(regex))
    }

    /// Preprocesses an already-built parse tree.
    pub fn from_tree(tree: ParseTree) -> Self {
        let lca = Lca::new(&tree);
        let props = NodeProps::compute(&tree);
        let flat = FlatTables::build(&tree, &props, &lca);
        TreeAnalysis {
            tree,
            lca,
            props,
            flat,
        }
    }

    /// The underlying parse tree.
    #[inline]
    pub fn tree(&self) -> &ParseTree {
        &self.tree
    }

    /// The node properties (nullability, SupFirst/SupLast, pointers).
    #[inline]
    pub fn props(&self) -> &NodeProps {
        &self.props
    }

    /// The LCA structure.
    #[inline]
    pub fn lca(&self) -> &Lca {
        &self.lca
    }

    /// The dense struct-of-arrays tables behind the hot query path.
    #[inline]
    pub fn flat(&self) -> &FlatTables {
        &self.flat
    }

    /// The lowest common ancestor of two positions' leaves.
    #[inline]
    pub fn lca_of_positions(&self, p: PosId, q: PosId) -> NodeId {
        self.lca.query(self.tree.pos_node(p), self.tree.pos_node(q))
    }

    /// Theorem 2.4: whether `q ∈ Follow(p)`, in constant time.
    ///
    /// Runs on the dense [`FlatTables`]: one LCA query plus a handful of
    /// interval comparisons over preorder `u32` arrays.
    #[inline]
    pub fn check_if_follow(&self, p: PosId, q: PosId) -> bool {
        self.flat.follow_ids(p.index() as u32, q.index() as u32)
    }

    /// Like [`Self::check_if_follow`], but reports *how* `q` follows `p`
    /// (Lemma 2.2), or `None` if it does not.
    pub fn follow_kind(&self, p: PosId, q: PosId) -> Option<FollowKind> {
        let pnode = self.tree.pos_node(p);
        let qnode = self.tree.pos_node(q);
        let n = self.lca.query(pnode, qnode);

        // Case (1): lab(n) = ·, q ∈ First(Rchild(n)), p ∈ Last(Lchild(n)).
        let via_concat = if self.tree.kind(n) == NodeKind::Concat {
            let lchild = self.tree.lchild(n).expect("concat has children");
            let rchild = self.tree.rchild(n).expect("concat has children");
            self.props.in_first(&self.tree, q, rchild) && self.props.in_last(&self.tree, p, lchild)
        } else {
            false
        };

        // Case (2): q ∈ First(s) and p ∈ Last(s) for s the lowest iterating
        // ancestor of n.
        let via_star = match self.props.p_star(n) {
            Some(s) => {
                self.props.in_first(&self.tree, q, s) && self.props.in_last(&self.tree, p, s)
            }
            None => false,
        };

        match (via_concat, via_star) {
            (true, true) => Some(FollowKind::Both),
            (true, false) => Some(FollowKind::Concat),
            (false, true) => Some(FollowKind::Star),
            (false, false) => None,
        }
    }

    /// Whether `q` follows `p` through a concatenation (Lemma 2.2, case 1).
    #[inline]
    pub fn follows_via_concat(&self, p: PosId, q: PosId) -> bool {
        matches!(
            self.follow_kind(p, q),
            Some(FollowKind::Concat) | Some(FollowKind::Both)
        )
    }

    /// Whether `q` follows `p` through an iterating node (Lemma 2.2, case 2).
    #[inline]
    pub fn follows_via_star(&self, p: PosId, q: PosId) -> bool {
        matches!(
            self.follow_kind(p, q),
            Some(FollowKind::Star) | Some(FollowKind::Both)
        )
    }

    /// Whether the whole expression is nullable (`ε ∈ L(e′)`).
    #[inline]
    pub fn expr_nullable(&self) -> bool {
        self.props.nullable(self.tree.expr_root())
    }

    /// Whether the word consisting of the single position `p` can end a
    /// match, i.e. whether the phantom end marker `$` follows `p`.
    /// Precomputed: a single bit test.
    #[inline]
    pub fn can_end_at(&self, p: PosId) -> bool {
        self.flat.can_end(p.index() as u32)
    }

    /// Positions labeled with `sym` (delegates to the parse tree).
    #[inline]
    pub fn positions_of_symbol(&self, sym: Symbol) -> &[PosId] {
        self.tree.positions_of_symbol(sym)
    }

    /// Enumerates `Follow(p)` by testing every position. `O(|Pos(e)|)` per
    /// call — a diagnostic/testing helper, not used by the fast algorithms.
    pub fn follow_set_naive(&self, p: PosId) -> Vec<PosId> {
        (0..self.tree.num_positions())
            .map(PosId::from_index)
            .filter(|&q| self.check_if_follow(p, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::parse;
    use std::collections::BTreeSet;

    fn setup(input: &str) -> (TreeAnalysis, redet_syntax::Alphabet) {
        let (e, sigma) = parse(input).unwrap();
        (TreeAnalysis::build(&e), sigma)
    }

    /// Reference Follow relation computed with the classical syntax-directed
    /// Glushkov recursion (independent of Lemma 2.2 / LCA machinery).
    fn follow_naive(analysis: &TreeAnalysis) -> BTreeSet<(PosId, PosId)> {
        let tree = analysis.tree();
        let props = analysis.props();
        let mut follow = BTreeSet::new();
        for n in tree.node_ids() {
            let (iterates, concat) = match tree.kind(n) {
                NodeKind::Concat => (false, true),
                k if k.is_iterating() => (true, false),
                _ => (false, false),
            };
            if concat {
                let l = tree.lchild(n).unwrap();
                let r = tree.rchild(n).unwrap();
                for p in props.last_set(tree, l) {
                    for q in props.first_set(tree, r) {
                        follow.insert((p, q));
                    }
                }
            }
            if iterates {
                for p in props.last_set(tree, n) {
                    for q in props.first_set(tree, n) {
                        follow.insert((p, q));
                    }
                }
            }
        }
        follow
    }

    fn check_follow_agrees(input: &str) {
        let (analysis, _) = setup(input);
        let expected = follow_naive(&analysis);
        let m = analysis.tree().num_positions();
        for p in 0..m {
            for q in 0..m {
                let (p, q) = (PosId::from_index(p), PosId::from_index(q));
                assert_eq!(
                    analysis.check_if_follow(p, q),
                    expected.contains(&(p, q)),
                    "checkIfFollow({p:?},{q:?}) disagrees on {input}"
                );
            }
        }
    }

    #[test]
    fn theorem_2_4_on_paper_expressions() {
        for input in [
            "a",
            "a b",
            "a + b",
            "(a b + b b? a)*",
            "(a* b a + b b)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(c (b? a?)) a",
            "(c (a? b?)) a",
            "(c (b? a)*) a",
            "(c (b? a)) a",
            "(a (b? a))*",
            "(a (b? a?))*",
            "a? b? c? d?",
            "(a0 + a1 + a2 + a3)*",
            "((a + b)* c)* d",
            "(a b){2,3} c",
            "(a{2,5} + b)* c",
            "(x (a b)* y)*",
        ] {
            check_follow_agrees(input);
        }
    }

    #[test]
    fn example_2_1_follow_sets() {
        // e1 = (ab + b(b?)a)*: Follow(p3) = {p4, p5}.
        let (analysis, _) = setup("(a b + b (b?) a)*");
        let p = |i: usize| PosId::from_index(i); // p0 = #, p1..p5 = positions, p6 = $
        let follow_p3: Vec<_> = analysis
            .follow_set_naive(p(3))
            .into_iter()
            .filter(|q| *q != analysis.tree().end_pos())
            .collect();
        assert_eq!(follow_p3, vec![p(4), p(5)]);

        // e2 = (a*ba + bb)*: Follow(q3) = {q1, q2, q4}.
        let (analysis2, _) = setup("(a* b a + b b)*");
        let follow_q3: Vec<_> = analysis2
            .follow_set_naive(p(3))
            .into_iter()
            .filter(|q| *q != analysis2.tree().end_pos())
            .collect();
        assert_eq!(follow_q3, vec![p(1), p(2), p(4)]);
    }

    #[test]
    fn figure1_follow_examples() {
        // In e0 (Figure 1): p4 ∈ Follow·(p3) and p1 ∈ Follow∗(p5).
        let (analysis, _) = setup("(c?((a b*)(a? c)))*(b a)");
        let p = PosId::from_index;
        assert!(analysis.follows_via_concat(p(3), p(4)));
        assert!(analysis.follows_via_star(p(5), p(1)));
        assert!(!analysis.follows_via_concat(p(5), p(1)));
    }

    #[test]
    fn begin_and_end_markers() {
        let (analysis, sigma) = setup("(a b)*");
        let begin = analysis.tree().begin_pos();
        let a1 = analysis
            .tree()
            .positions_of_symbol(sigma.lookup("a").unwrap())[0];
        let b2 = analysis
            .tree()
            .positions_of_symbol(sigma.lookup("b").unwrap())[0];
        // # is followed by First(e′) and, since e′ is nullable, by $.
        assert!(analysis.check_if_follow(begin, a1));
        assert!(!analysis.check_if_follow(begin, b2));
        assert!(analysis.check_if_follow(begin, analysis.tree().end_pos()));
        assert!(analysis.expr_nullable());
        // b can end a word, a cannot.
        assert!(analysis.can_end_at(b2));
        assert!(!analysis.can_end_at(a1));
    }

    #[test]
    fn self_follow_through_star() {
        let (analysis, _) = setup("a*");
        let a = PosId::from_index(1);
        assert_eq!(analysis.follow_kind(a, a), Some(FollowKind::Star));
        let (analysis, _) = setup("a b");
        let a = PosId::from_index(1);
        assert_eq!(analysis.follow_kind(a, a), None);
    }

    #[test]
    fn follow_kind_both() {
        // In (a b)* with p = b, q = a: q follows p only via the star.
        // In (a a)* with p = a1, q = a2: via concat; and a2 -> a1 via star.
        let (analysis, _) = setup("(a b?)*");
        let a = PosId::from_index(1);
        let b = PosId::from_index(2);
        // b? is nullable so a follows a via star; b follows a via concat.
        assert_eq!(analysis.follow_kind(a, b), Some(FollowKind::Concat));
        assert_eq!(analysis.follow_kind(a, a), Some(FollowKind::Star));
        assert_eq!(analysis.follow_kind(b, a), Some(FollowKind::Star));
    }

    #[test]
    fn repeat_nodes_follow_like_stars_when_they_iterate() {
        let (analysis, _) = setup("(a b){2,4} c");
        let a = PosId::from_index(1);
        let b = PosId::from_index(2);
        let c = PosId::from_index(3);
        assert!(analysis.check_if_follow(b, a), "iteration edge");
        assert!(analysis.check_if_follow(b, c), "exit edge");
        assert!(analysis.check_if_follow(a, b));
        assert!(!analysis.check_if_follow(a, c));
    }
}
