//! Node properties: nullability, `SupFirst`/`SupLast`, and the
//! `pSupFirst`/`pSupLast`/`pStar` pointers (Section 2 of the paper).
//!
//! A node `n` with parent `n′` is
//!
//! * a **SupFirst** node iff `lab(n′) = ·`, `n` is the right child of `n′`
//!   and the left child of `n′` is non-nullable — at such a node the
//!   `First`-set "stops" growing upwards;
//! * a **SupLast** node iff `lab(n′) = ·`, `n` is the left child of `n′` and
//!   the right child of `n′` is non-nullable.
//!
//! `pSupFirst(n)` / `pSupLast(n)` / `pStar(n)` are the lowest
//! (ancestor-or-self) SupFirst node, SupLast node, and iterating (`∗` or
//! `{i,j}` with `j ≥ 2`) node above `n`. Lemma 2.3 then gives constant-time
//! `First`/`Last` membership:
//!
//! * `p ∈ First(n)` iff `pSupFirst(p) ≼ n ≼ p`;
//! * `p ∈ Last(n)`  iff `pSupLast(p) ≼ n ≼ p`.

use crate::node::{NodeId, NodeKind, PosId};
use crate::parse_tree::ParseTree;

/// Per-node properties computed in one linear pass over a [`ParseTree`].
#[derive(Clone, Debug)]
pub struct NodeProps {
    nullable: Vec<bool>,
    sup_first: Vec<bool>,
    sup_last: Vec<bool>,
    p_sup_first: Vec<Option<NodeId>>,
    p_sup_last: Vec<Option<NodeId>>,
    p_star: Vec<Option<NodeId>>,
}

impl NodeProps {
    /// Computes all properties for `tree` in `O(|tree|)` time.
    pub fn compute(tree: &ParseTree) -> Self {
        let n = tree.num_nodes();
        let mut nullable = vec![false; n];

        // Children always have larger preorder ids than their parent, so a
        // reverse sweep is a bottom-up evaluation.
        for id in (0..n).rev() {
            let node = NodeId::from_index(id);
            nullable[id] = match tree.kind(node) {
                NodeKind::Begin | NodeKind::End | NodeKind::Position(_) => false,
                NodeKind::Concat => {
                    nullable[tree.lchild(node).expect("concat has children").index()]
                        && nullable[tree.rchild(node).expect("concat has children").index()]
                }
                NodeKind::Union => {
                    nullable[tree.lchild(node).expect("union has children").index()]
                        || nullable[tree.rchild(node).expect("union has children").index()]
                }
                NodeKind::Optional | NodeKind::Star => true,
                NodeKind::Repeat(min, _) => {
                    min == 0 || nullable[tree.lchild(node).expect("repeat has a child").index()]
                }
            };
        }

        let mut sup_first = vec![false; n];
        let mut sup_last = vec![false; n];
        for id in 0..n {
            let node = NodeId::from_index(id);
            let Some(parent) = tree.parent(node) else {
                continue;
            };
            if tree.kind(parent) != NodeKind::Concat {
                continue;
            }
            let lchild = tree.lchild(parent).expect("concat has children");
            let rchild = tree.rchild(parent).expect("concat has children");
            if node == rchild && !nullable[lchild.index()] {
                sup_first[id] = true;
            }
            if node == lchild && !nullable[rchild.index()] {
                sup_last[id] = true;
            }
        }

        // Lowest ancestor-or-self pointers: a forward sweep is a top-down
        // traversal because parents precede children in preorder.
        let mut p_sup_first = vec![None; n];
        let mut p_sup_last = vec![None; n];
        let mut p_star = vec![None; n];
        for id in 0..n {
            let node = NodeId::from_index(id);
            let inherited = tree
                .parent(node)
                .map(|p| {
                    (
                        p_sup_first[p.index()],
                        p_sup_last[p.index()],
                        p_star[p.index()],
                    )
                })
                .unwrap_or((None, None, None));
            p_sup_first[id] = if sup_first[id] {
                Some(node)
            } else {
                inherited.0
            };
            p_sup_last[id] = if sup_last[id] {
                Some(node)
            } else {
                inherited.1
            };
            p_star[id] = if tree.kind(node).is_iterating() {
                Some(node)
            } else {
                inherited.2
            };
        }

        NodeProps {
            nullable,
            sup_first,
            sup_last,
            p_sup_first,
            p_sup_last,
            p_star,
        }
    }

    /// Whether `ε ∈ L(e/n)`.
    #[inline]
    pub fn nullable(&self, n: NodeId) -> bool {
        self.nullable[n.index()]
    }

    /// Whether `n` is a SupFirst node.
    #[inline]
    pub fn sup_first(&self, n: NodeId) -> bool {
        self.sup_first[n.index()]
    }

    /// Whether `n` is a SupLast node.
    #[inline]
    pub fn sup_last(&self, n: NodeId) -> bool {
        self.sup_last[n.index()]
    }

    /// The lowest SupFirst node on the path from `n` to the root (including
    /// `n` itself), or `None` if there is none.
    #[inline]
    pub fn p_sup_first(&self, n: NodeId) -> Option<NodeId> {
        self.p_sup_first[n.index()]
    }

    /// The lowest SupLast node on the path from `n` to the root (including
    /// `n` itself), or `None` if there is none.
    #[inline]
    pub fn p_sup_last(&self, n: NodeId) -> Option<NodeId> {
        self.p_sup_last[n.index()]
    }

    /// The lowest iterating (`∗` or `{i,j}` with `j ≥ 2`) node on the path
    /// from `n` to the root (including `n` itself), or `None`.
    #[inline]
    pub fn p_star(&self, n: NodeId) -> Option<NodeId> {
        self.p_star[n.index()]
    }

    /// Lemma 2.3 (1): whether position `p` belongs to `First(n)`.
    #[inline]
    pub fn in_first(&self, tree: &ParseTree, p: PosId, n: NodeId) -> bool {
        let pnode = tree.pos_node(p);
        if !tree.is_ancestor(n, pnode) {
            return false;
        }
        match self.p_sup_first(pnode) {
            None => true,
            Some(x) => tree.is_ancestor(x, n),
        }
    }

    /// Lemma 2.3 (2): whether position `p` belongs to `Last(n)`.
    #[inline]
    pub fn in_last(&self, tree: &ParseTree, p: PosId, n: NodeId) -> bool {
        let pnode = tree.pos_node(p);
        if !tree.is_ancestor(n, pnode) {
            return false;
        }
        match self.p_sup_last(pnode) {
            None => true,
            Some(x) => tree.is_ancestor(x, n),
        }
    }

    /// Enumerates `First(n)` by scanning the positions below `n`.
    ///
    /// `O(|subtree|)` — intended for tests, diagnostics and the quadratic
    /// Glushkov baseline, not for the linear-time algorithms.
    pub fn first_set(&self, tree: &ParseTree, n: NodeId) -> Vec<PosId> {
        positions_under(tree, n)
            .filter(|&p| self.in_first(tree, p, n))
            .collect()
    }

    /// Enumerates `Last(n)` by scanning the positions below `n`.
    pub fn last_set(&self, tree: &ParseTree, n: NodeId) -> Vec<PosId> {
        positions_under(tree, n)
            .filter(|&p| self.in_last(tree, p, n))
            .collect()
    }
}

/// Iterates over the positions whose leaf lies in the subtree rooted at `n`.
pub fn positions_under(tree: &ParseTree, n: NodeId) -> impl Iterator<Item = PosId> + '_ {
    let positions = tree.positions();
    let start = positions.partition_point(|&leaf| leaf < n);
    let end_node = NodeId::from_index(tree.subtree_end(n));
    let end = positions.partition_point(|&leaf| leaf < end_node);
    (start..end).map(PosId::from_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::parse;

    fn setup(input: &str) -> (ParseTree, NodeProps, redet_syntax::Alphabet) {
        let (e, sigma) = parse(input).unwrap();
        let tree = ParseTree::build(&e);
        let props = NodeProps::compute(&tree);
        (tree, props, sigma)
    }

    /// Reference First computation straight from the syntax-directed
    /// definition (used only to validate Lemma 2.3 membership).
    fn first_naive(tree: &ParseTree, props: &NodeProps, n: NodeId) -> Vec<PosId> {
        match tree.kind(n) {
            k if k.is_leaf() => vec![tree.node_pos(n).unwrap()],
            NodeKind::Concat => {
                let l = tree.lchild(n).unwrap();
                let r = tree.rchild(n).unwrap();
                let mut out = first_naive(tree, props, l);
                if props.nullable(l) {
                    out.extend(first_naive(tree, props, r));
                }
                out
            }
            NodeKind::Union => {
                let mut out = first_naive(tree, props, tree.lchild(n).unwrap());
                out.extend(first_naive(tree, props, tree.rchild(n).unwrap()));
                out
            }
            _ => first_naive(tree, props, tree.lchild(n).unwrap()),
        }
    }

    fn last_naive(tree: &ParseTree, props: &NodeProps, n: NodeId) -> Vec<PosId> {
        match tree.kind(n) {
            k if k.is_leaf() => vec![tree.node_pos(n).unwrap()],
            NodeKind::Concat => {
                let l = tree.lchild(n).unwrap();
                let r = tree.rchild(n).unwrap();
                let mut out = last_naive(tree, props, r);
                if props.nullable(r) {
                    out.extend(last_naive(tree, props, l));
                }
                out
            }
            NodeKind::Union => {
                let mut out = last_naive(tree, props, tree.lchild(n).unwrap());
                out.extend(last_naive(tree, props, tree.rchild(n).unwrap()));
                out
            }
            _ => last_naive(tree, props, tree.lchild(n).unwrap()),
        }
    }

    fn check_lemma_2_3(input: &str) {
        let (tree, props, _) = setup(input);
        for n in tree.node_ids() {
            let mut expected_first = first_naive(&tree, &props, n);
            expected_first.sort();
            let mut got_first = props.first_set(&tree, n);
            got_first.sort();
            assert_eq!(got_first, expected_first, "First({n:?}) in {input}");

            let mut expected_last = last_naive(&tree, &props, n);
            expected_last.sort();
            let mut got_last = props.last_set(&tree, n);
            got_last.sort();
            assert_eq!(got_last, expected_last, "Last({n:?}) in {input}");
        }
    }

    #[test]
    fn lemma_2_3_on_paper_expressions() {
        for input in [
            "a",
            "a b",
            "a + b",
            "a? b",
            "(a b + b b? a)*",
            "(a* b a + b b)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(c (b? a?)) a",
            "(c (a? b?)) a",
            "(c (b? a)*) a",
            "(c (b? a)) a",
            "(a (b? a))*",
            "(a (b? a?))*",
            "a? b? c? d?",
            "(a0 + a1 + a2 + a3)*",
            "(a b){2,3} c",
            "(a{2,5} + b)* c",
        ] {
            check_lemma_2_3(input);
        }
    }

    #[test]
    fn nullability_matches_ast() {
        for input in ["(a b + b b? a)*", "a? b?", "a b?", "(a + b?) c*", "a{2,3}"] {
            let (e, _) = parse(input).unwrap();
            let tree = ParseTree::build(&e);
            let props = NodeProps::compute(&tree);
            assert_eq!(props.nullable(tree.expr_root()), e.nullable(), "{input}");
            // The wrapped expression (# e′) $ is never nullable.
            assert!(!props.nullable(tree.root()));
        }
    }

    #[test]
    fn figure1_sup_nodes() {
        // e0 = (c?((ab*)(a?c)))*(ba) — Figure 1. We check the structural
        // facts the figure annotates, independently of node numbering:
        // the root of e′ (node n1 in the figure) is a SupFirst node because
        // of the phantom #, and the star subtree is a SupLast node because
        // the (b a) factor to its right is non-nullable. The (b a) factor
        // itself is *not* SupFirst because the starred part is nullable.
        let (tree, props, sigma) = setup("(c?((a b*)(a? c)))*(b a)");
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        let expr_root = tree.expr_root();
        let star = tree.lchild(expr_root).unwrap();
        let ba = tree.rchild(expr_root).unwrap();
        assert!(matches!(tree.kind(star), NodeKind::Star));
        assert!(props.sup_first(expr_root));
        assert!(props.sup_last(star));
        assert!(!props.sup_first(ba));
        // First(e0) = {c (p1), a (p2), b (p6)}: the starred part is nullable
        // so the b of (b a) is a First position, but the final a is not.
        let last_b = *tree.positions_of_symbol(b).last().unwrap();
        let last_a = *tree.positions_of_symbol(a).last().unwrap();
        assert!(props.in_first(&tree, last_b, expr_root));
        assert!(!props.in_first(&tree, last_a, expr_root));
        // Last(e0) = {a (p7)} only.
        assert!(props.in_last(&tree, last_a, expr_root));
        assert!(!props.in_last(&tree, last_b, expr_root));
    }

    #[test]
    fn p_pointers_are_lowest_ancestors() {
        let (tree, props, _) = setup("(c?((a b*)(a? c)))*(b a)");
        for n in tree.node_ids() {
            // Recompute by climbing.
            let mut cur = Some(n);
            let mut expect_sf = None;
            while let Some(x) = cur {
                if props.sup_first(x) {
                    expect_sf = Some(x);
                    break;
                }
                cur = tree.parent(x);
            }
            assert_eq!(props.p_sup_first(n), expect_sf, "pSupFirst({n:?})");

            let mut cur = Some(n);
            let mut expect_sl = None;
            while let Some(x) = cur {
                if props.sup_last(x) {
                    expect_sl = Some(x);
                    break;
                }
                cur = tree.parent(x);
            }
            assert_eq!(props.p_sup_last(n), expect_sl, "pSupLast({n:?})");

            let mut cur = Some(n);
            let mut expect_star = None;
            while let Some(x) = cur {
                if tree.kind(x).is_iterating() {
                    expect_star = Some(x);
                    break;
                }
                cur = tree.parent(x);
            }
            assert_eq!(props.p_star(n), expect_star, "pStar({n:?})");
        }
    }

    #[test]
    fn r1_guarantees_defined_pointers_inside_expr() {
        // For every node of e′ both pSupFirst and pSupLast are defined
        // (the paper notes this follows from R1).
        let (tree, props, _) = setup("(a b + b b? a)*");
        let expr_root = tree.expr_root();
        for n in tree.node_ids() {
            if tree.is_ancestor(expr_root, n) {
                assert!(
                    props.p_sup_first(n).is_some(),
                    "pSupFirst undefined at {n:?}"
                );
                assert!(props.p_sup_last(n).is_some(), "pSupLast undefined at {n:?}");
            }
        }
    }

    #[test]
    fn positions_under_subtrees() {
        let (tree, _, _) = setup("(a b)(c d)");
        let expr_root = tree.expr_root();
        let left = tree.lchild(expr_root).unwrap();
        let right = tree.rchild(expr_root).unwrap();
        let under_left: Vec<_> = positions_under(&tree, left).collect();
        let under_right: Vec<_> = positions_under(&tree, right).collect();
        assert_eq!(under_left.len(), 2);
        assert_eq!(under_right.len(), 2);
        let all: Vec<_> = positions_under(&tree, tree.root()).collect();
        assert_eq!(all.len(), tree.num_positions());
    }
}
