//! Parse-tree infrastructure for deterministic regular expressions.
//!
//! This crate contains the machinery of Section 2 of *"Deterministic Regular
//! Expressions in Linear Time"* (Groz, Maneth, Staworko — PODS 2012):
//!
//! * [`ParseTree`] — an arena representation of the parse tree of a regular
//!   expression, wrapped into the `(# e′) $` form required by restriction
//!   (R1); leaves are *positions*;
//! * [`rmq`] — range-minimum-query structures (naive, sparse table, and the
//!   linear-preprocessing ±1 block decomposition of Bender & Farach-Colton);
//! * [`Lca`] — constant-time lowest-common-ancestor queries via an Euler
//!   tour and RMQ;
//! * [`NodeProps`] — nullability, the `SupFirst`/`SupLast` predicates, the
//!   `pSupFirst`/`pSupLast`/`pStar` pointers, and the `First`/`Last`
//!   membership tests of Lemma 2.3;
//! * [`TreeAnalysis`] — the preprocessed bundle offering the constant-time
//!   `checkIfFollow(p, q)` primitive of Theorem 2.4.
//!
//! Everything here is `O(|e|)` preprocessing with `O(1)` queries, which is
//! the foundation on which the linear-time determinism test (`redet-core`)
//! and all matching algorithms are built.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod flat;
pub mod lca;
pub mod node;
pub mod parse_tree;
pub mod props;
pub mod rmq;

pub use analysis::{FollowKind, TreeAnalysis};
pub use flat::FlatTables;
pub use lca::Lca;
pub use node::{NodeId, NodeKind, PosId};
pub use parse_tree::ParseTree;
pub use props::NodeProps;
