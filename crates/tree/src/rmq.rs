//! Range-minimum-query structures.
//!
//! Constant-time lowest-common-ancestor queries (used throughout the paper —
//! Theorem 2.4, Lemma 3.1, the matching algorithms) reduce to range-minimum
//! queries over the depth sequence of an Euler tour [1, 15]. This module
//! provides three interchangeable implementations:
//!
//! * [`NaiveRmq`] — `O(1)` preprocessing, `O(n)` query; the testing oracle;
//! * [`SparseTableRmq`] — `O(n log n)` preprocessing, `O(1)` query; simple
//!   and fast in practice;
//! * [`PlusMinusOneRmq`] — the Bender/Farach-Colton block decomposition for
//!   ±1 sequences: `O(n)` preprocessing and `O(1)` query, matching the
//!   bound the paper relies on.
//!
//! All queries return the *index* of a minimum over the inclusive range
//! `[lo, hi]`; ties are broken towards the leftmost minimum.

/// Common interface of the RMQ implementations.
pub trait RangeMin {
    /// Index of the leftmost minimum value within the inclusive range
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi` is out of bounds.
    fn query(&self, lo: usize, hi: usize) -> usize;
}

/// Linear-scan RMQ: no preprocessing, `O(n)` queries. Testing oracle.
#[derive(Clone, Debug)]
pub struct NaiveRmq {
    values: Vec<u32>,
}

impl NaiveRmq {
    /// Wraps `values` without preprocessing.
    pub fn new(values: Vec<u32>) -> Self {
        NaiveRmq { values }
    }
}

impl RangeMin for NaiveRmq {
    fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        let mut best = lo;
        for i in lo + 1..=hi {
            if self.values[i] < self.values[best] {
                best = i;
            }
        }
        best
    }
}

/// Sparse-table RMQ: `O(n log n)` preprocessing, `O(1)` query.
///
/// The table is one flat allocation (`levels × n`, row-major) so a query is
/// two loads from the same array plus a comparison — no nested-`Vec` pointer
/// chases on the hot path.
#[derive(Clone, Debug)]
pub struct SparseTableRmq {
    values: Vec<u32>,
    /// `table[k * n + i]` = index of the minimum in `[i, i + 2^k - 1]`.
    table: Vec<u32>,
    n: usize,
}

impl SparseTableRmq {
    /// Preprocesses `values`.
    pub fn new(values: Vec<u32>) -> Self {
        let n = values.len();
        let levels = if n <= 1 { 1 } else { n.ilog2() as usize + 1 };
        let mut table = vec![0u32; levels * n.max(1)];
        for (i, slot) in table[..n].iter_mut().enumerate() {
            *slot = i as u32;
        }
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let width = 1usize << k;
            for i in 0..=n - width {
                let left = table[(k - 1) * n + i];
                let right = table[(k - 1) * n + i + half];
                table[k * n + i] = if values[left as usize] <= values[right as usize] {
                    left
                } else {
                    right
                };
            }
        }
        SparseTableRmq { values, table, n }
    }

    /// The query body, shared by the trait impl and the inlined LCA path.
    #[inline]
    pub(crate) fn query_inline(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        if lo == hi {
            return lo;
        }
        let k = (hi - lo + 1).ilog2() as usize;
        let row = k * self.n;
        let left = self.table[row + lo] as usize;
        let right = self.table[row + hi + 1 - (1usize << k)] as usize;
        if self.values[left] <= self.values[right] {
            left
        } else {
            right
        }
    }
}

impl RangeMin for SparseTableRmq {
    fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        self.query_inline(lo, hi)
    }
}

/// Bender/Farach-Colton RMQ for ±1 sequences: `O(n)` preprocessing, `O(1)`
/// query.
///
/// The sequence is split into blocks of size `⌈(log₂ n)/2⌉`; a sparse table
/// answers queries over whole blocks, and a lookup table indexed by the
/// *shape* of a block (the bitmask of its ±1 steps) answers in-block
/// queries. The depth sequence of an Euler tour is ±1, which is exactly the
/// input produced by [`crate::Lca`].
#[derive(Clone, Debug)]
pub struct PlusMinusOneRmq {
    values: Vec<u32>,
    /// `log₂(block_size)` — blocks are a power of two wide so the hot query
    /// path uses shifts and masks instead of integer division.
    block_shift: u32,
    /// `block_size - 1`.
    block_mask: usize,
    block_size: usize,
    /// Sparse table over the per-block minima (stores block indices).
    block_table: SparseTableRmq,
    /// Index (within its block) of the minimum of each block.
    block_min_offset: Vec<u32>,
    /// For each block, the base offset of its shape's slice in `in_block`
    /// (`shape * block_size²`, precomputed so queries skip the multiply).
    block_shape_base: Vec<u32>,
    /// Flat shape tables: `in_block[shape * bs² + lo * bs + hi]` = offset of
    /// the minimum of `[lo, hi]` within any block of that shape. One flat
    /// allocation for all shapes; only occurring shapes are filled.
    in_block: Vec<u8>,
}

impl PlusMinusOneRmq {
    /// Preprocesses a ±1 sequence.
    ///
    /// # Panics
    /// Panics (in debug builds) if consecutive values differ by more than 1.
    pub fn new(values: Vec<u32>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0].abs_diff(w[1]) == 1),
            "PlusMinusOneRmq requires a ±1 sequence"
        );
        let n = values.len().max(1);
        // Largest power of two not exceeding ⌈(log₂ n)/2⌉: keeps the number
        // of shapes O(√n) (preprocessing stays linear) while making the
        // block arithmetic shift/mask only.
        let target = ((n.ilog2() as usize) / 2).max(1);
        let block_shift = target.ilog2();
        let block_size = 1usize << block_shift;
        let block_mask = block_size - 1;
        let num_blocks = values.len().div_ceil(block_size).max(1);

        let mut block_minima = Vec::with_capacity(num_blocks);
        let mut block_min_offset = Vec::with_capacity(num_blocks);
        let mut block_shape_base = Vec::with_capacity(num_blocks);
        let num_shapes = 1usize << (block_size - 1);
        let shape_stride = block_size * block_size;
        let mut in_block = vec![0u8; num_shapes * shape_stride];
        let mut shape_filled = vec![false; num_shapes];

        for b in 0..num_blocks {
            let start = b * block_size;
            let end = (start + block_size).min(values.len());
            let block = &values[start..end];
            // Minimum of the block.
            let (off, min) = block
                .iter()
                .enumerate()
                .min_by_key(|&(i, v)| (*v, i))
                .map(|(i, v)| (i, *v))
                .unwrap_or((0, 0));
            block_minima.push(min);
            block_min_offset.push(off as u32);
            // Shape: bit i set iff step i goes up (+1). Short final blocks are
            // padded with ascending steps, which never create new minima.
            let mut shape = 0u32;
            for i in 0..block_size - 1 {
                let up = if i + 1 < block.len() {
                    block[i + 1] > block[i]
                } else {
                    true
                };
                if up {
                    shape |= 1 << i;
                }
            }
            block_shape_base.push(shape * shape_stride as u32);
            // Fill the lookup table for this shape if not yet done.
            if !shape_filled[shape as usize] {
                shape_filled[shape as usize] = true;
                Self::fill_shape_table(
                    shape,
                    block_size,
                    &mut in_block[shape as usize * shape_stride..][..shape_stride],
                );
            }
        }

        PlusMinusOneRmq {
            values,
            block_shift,
            block_mask,
            block_size,
            block_table: SparseTableRmq::new(block_minima),
            block_min_offset,
            block_shape_base,
            in_block,
        }
    }

    fn fill_shape_table(shape: u32, block_size: usize, table: &mut [u8]) {
        // Reconstruct the (relative) values of a block with this shape.
        let mut rel = Vec::with_capacity(block_size);
        let mut cur: i32 = 0;
        rel.push(cur);
        for i in 0..block_size - 1 {
            cur += if shape & (1 << i) != 0 { 1 } else { -1 };
            rel.push(cur);
        }
        for lo in 0..block_size {
            let mut best = lo;
            for hi in lo..block_size {
                if rel[hi] < rel[best] {
                    best = hi;
                }
                table[lo * block_size + hi] = best as u8;
            }
        }
    }

    #[inline]
    fn in_block_query(&self, block: usize, lo: usize, hi: usize) -> usize {
        let base = self.block_shape_base[block] as usize;
        let off = self.in_block[base + (lo << self.block_shift) + hi] as usize;
        (block << self.block_shift) + off
    }

    /// The query body, shared by the trait impl and the inlined LCA path.
    #[inline]
    pub(crate) fn query_inline(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        let b_lo = lo >> self.block_shift;
        let b_hi = hi >> self.block_shift;
        if b_lo == b_hi {
            return self.in_block_query(b_lo, lo & self.block_mask, hi & self.block_mask);
        }
        // Prefix of the first block, suffix of the last block.
        let left = self.in_block_query(b_lo, lo & self.block_mask, self.block_size - 1);
        let right = self.in_block_query(b_hi, 0, hi & self.block_mask);
        let mut best = if self.values[left] <= self.values[right] {
            left
        } else {
            right
        };
        // Whole blocks strictly in between.
        if b_lo + 1 < b_hi {
            let mid_block = self.block_table.query_inline(b_lo + 1, b_hi - 1);
            let mid = (mid_block << self.block_shift) + self.block_min_offset[mid_block] as usize;
            if self.values[mid] < self.values[best]
                || (self.values[mid] == self.values[best] && mid < best)
            {
                best = mid;
            }
        }
        best
    }
}

impl RangeMin for PlusMinusOneRmq {
    fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        self.query_inline(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm1_sequence(len: usize, seed: u64) -> Vec<u32> {
        // Deterministic pseudo-random ±1 walk staying non-negative.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut values = Vec::with_capacity(len);
        let mut cur: u32 = 50;
        for _ in 0..len {
            values.push(cur);
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) & 1 == 1 || cur == 0 {
                cur += 1;
            } else {
                cur -= 1;
            }
        }
        values
    }

    fn check_all_ranges(values: Vec<u32>) {
        let naive = NaiveRmq::new(values.clone());
        let sparse = SparseTableRmq::new(values.clone());
        let pm1 = PlusMinusOneRmq::new(values.clone());
        let n = values.len();
        for lo in 0..n {
            for hi in lo..n {
                let expected = naive.query(lo, hi);
                let got_sparse = sparse.query(lo, hi);
                let got_pm1 = pm1.query(lo, hi);
                assert_eq!(
                    values[got_sparse], values[expected],
                    "sparse value mismatch on [{lo},{hi}]"
                );
                assert_eq!(
                    values[got_pm1], values[expected],
                    "±1 value mismatch on [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn tiny_sequences() {
        check_all_ranges(vec![5]);
        check_all_ranges(vec![2, 3]);
        check_all_ranges(vec![3, 2]);
        check_all_ranges(vec![1, 2, 1, 0, 1, 2, 3, 2]);
    }

    #[test]
    fn random_walks_of_many_sizes() {
        for len in [1, 2, 3, 7, 16, 33, 64, 100, 257] {
            for seed in 0..3 {
                check_all_ranges(pm1_sequence(len, seed));
            }
        }
    }

    #[test]
    fn sparse_table_on_arbitrary_values() {
        let values = vec![9, 3, 7, 1, 8, 12, 10, 1, 0, 4, 4, 2];
        let naive = NaiveRmq::new(values.clone());
        let sparse = SparseTableRmq::new(values.clone());
        for lo in 0..values.len() {
            for hi in lo..values.len() {
                assert_eq!(values[sparse.query(lo, hi)], values[naive.query(lo, hi)]);
            }
        }
    }

    #[test]
    fn leftmost_tie_breaking_naive() {
        let naive = NaiveRmq::new(vec![2, 1, 1, 1, 2]);
        assert_eq!(naive.query(0, 4), 1);
        assert_eq!(naive.query(2, 4), 2);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn out_of_range_panics() {
        let naive = NaiveRmq::new(vec![1, 2, 3]);
        naive.query(1, 3);
    }
}
