//! Range-minimum-query structures.
//!
//! Constant-time lowest-common-ancestor queries (used throughout the paper —
//! Theorem 2.4, Lemma 3.1, the matching algorithms) reduce to range-minimum
//! queries over the depth sequence of an Euler tour [1, 15]. This module
//! provides three interchangeable implementations:
//!
//! * [`NaiveRmq`] — `O(1)` preprocessing, `O(n)` query; the testing oracle;
//! * [`SparseTableRmq`] — `O(n log n)` preprocessing, `O(1)` query; simple
//!   and fast in practice;
//! * [`PlusMinusOneRmq`] — the Bender/Farach-Colton block decomposition for
//!   ±1 sequences: `O(n)` preprocessing and `O(1)` query, matching the
//!   bound the paper relies on.
//!
//! All queries return the *index* of a minimum over the inclusive range
//! `[lo, hi]`; ties are broken towards the leftmost minimum.

/// Common interface of the RMQ implementations.
pub trait RangeMin {
    /// Index of the leftmost minimum value within the inclusive range
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi` is out of bounds.
    fn query(&self, lo: usize, hi: usize) -> usize;
}

/// Linear-scan RMQ: no preprocessing, `O(n)` queries. Testing oracle.
#[derive(Clone, Debug)]
pub struct NaiveRmq {
    values: Vec<u32>,
}

impl NaiveRmq {
    /// Wraps `values` without preprocessing.
    pub fn new(values: Vec<u32>) -> Self {
        NaiveRmq { values }
    }
}

impl RangeMin for NaiveRmq {
    fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        let mut best = lo;
        for i in lo + 1..=hi {
            if self.values[i] < self.values[best] {
                best = i;
            }
        }
        best
    }
}

/// Sparse-table RMQ: `O(n log n)` preprocessing, `O(1)` query.
#[derive(Clone, Debug)]
pub struct SparseTableRmq {
    values: Vec<u32>,
    /// `table[k][i]` = index of the minimum in `[i, i + 2^k - 1]`.
    table: Vec<Vec<u32>>,
}

impl SparseTableRmq {
    /// Preprocesses `values`.
    pub fn new(values: Vec<u32>) -> Self {
        let n = values.len();
        let levels = if n <= 1 { 1 } else { n.ilog2() as usize + 1 };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..n as u32).collect());
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let prev = &table[k - 1];
            let width = 1usize << k;
            let mut row = Vec::with_capacity(n.saturating_sub(width) + 1);
            for i in 0..=n.saturating_sub(width) {
                let left = prev[i];
                let right = prev[i + half];
                row.push(if values[left as usize] <= values[right as usize] {
                    left
                } else {
                    right
                });
            }
            table.push(row);
        }
        SparseTableRmq { values, table }
    }
}

impl RangeMin for SparseTableRmq {
    fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        if lo == hi {
            return lo;
        }
        let k = (hi - lo + 1).ilog2() as usize;
        let left = self.table[k][lo] as usize;
        let right = self.table[k][hi + 1 - (1usize << k)] as usize;
        if self.values[left] <= self.values[right] {
            left
        } else {
            right
        }
    }
}

/// Bender/Farach-Colton RMQ for ±1 sequences: `O(n)` preprocessing, `O(1)`
/// query.
///
/// The sequence is split into blocks of size `⌈(log₂ n)/2⌉`; a sparse table
/// answers queries over whole blocks, and a lookup table indexed by the
/// *shape* of a block (the bitmask of its ±1 steps) answers in-block
/// queries. The depth sequence of an Euler tour is ±1, which is exactly the
/// input produced by [`crate::Lca`].
#[derive(Clone, Debug)]
pub struct PlusMinusOneRmq {
    values: Vec<u32>,
    block_size: usize,
    /// Sparse table over the per-block minima (stores block indices).
    block_table: SparseTableRmq,
    /// Index (within its block) of the minimum of each block.
    block_min_offset: Vec<u32>,
    /// For each block, its shape id.
    block_shape: Vec<u32>,
    /// `in_block[shape][lo * block_size + hi]` = offset of the minimum of
    /// `[lo, hi]` within any block of that shape.
    in_block: Vec<Vec<u8>>,
}

impl PlusMinusOneRmq {
    /// Preprocesses a ±1 sequence.
    ///
    /// # Panics
    /// Panics (in debug builds) if consecutive values differ by more than 1.
    pub fn new(values: Vec<u32>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0].abs_diff(w[1]) == 1),
            "PlusMinusOneRmq requires a ±1 sequence"
        );
        let n = values.len().max(1);
        let block_size = ((n.ilog2() as usize) / 2).max(1);
        let num_blocks = values.len().div_ceil(block_size).max(1);

        let mut block_minima = Vec::with_capacity(num_blocks);
        let mut block_min_offset = Vec::with_capacity(num_blocks);
        let mut block_shape = Vec::with_capacity(num_blocks);
        let num_shapes = 1usize << (block_size.saturating_sub(1));
        let mut in_block: Vec<Vec<u8>> = vec![Vec::new(); num_shapes];

        for b in 0..num_blocks {
            let start = b * block_size;
            let end = (start + block_size).min(values.len());
            let block = &values[start..end];
            // Minimum of the block.
            let (off, min) = block
                .iter()
                .enumerate()
                .min_by_key(|&(i, v)| (*v, i))
                .map(|(i, v)| (i, *v))
                .unwrap_or((0, 0));
            block_minima.push(min);
            block_min_offset.push(off as u32);
            // Shape: bit i set iff step i goes up (+1). Short final blocks are
            // padded with ascending steps, which never create new minima.
            let mut shape = 0u32;
            for i in 0..block_size.saturating_sub(1) {
                let up = if i + 1 < block.len() {
                    block[i + 1] > block[i]
                } else {
                    true
                };
                if up {
                    shape |= 1 << i;
                }
            }
            block_shape.push(shape);
            // Fill the lookup table for this shape if not yet done.
            let table = &mut in_block[shape as usize];
            if table.is_empty() {
                *table = Self::build_shape_table(shape, block_size);
            }
        }

        PlusMinusOneRmq {
            values,
            block_size,
            block_table: SparseTableRmq::new(block_minima),
            block_min_offset,
            block_shape,
            in_block,
        }
    }

    fn build_shape_table(shape: u32, block_size: usize) -> Vec<u8> {
        // Reconstruct the (relative) values of a block with this shape.
        let mut rel = Vec::with_capacity(block_size);
        let mut cur: i32 = 0;
        rel.push(cur);
        for i in 0..block_size.saturating_sub(1) {
            cur += if shape & (1 << i) != 0 { 1 } else { -1 };
            rel.push(cur);
        }
        let mut table = vec![0u8; block_size * block_size];
        for lo in 0..block_size {
            let mut best = lo;
            for hi in lo..block_size {
                if rel[hi] < rel[best] {
                    best = hi;
                }
                table[lo * block_size + hi] = best as u8;
            }
        }
        table
    }

    fn in_block_query(&self, block: usize, lo: usize, hi: usize) -> usize {
        let shape = self.block_shape[block] as usize;
        let off = self.in_block[shape][lo * self.block_size + hi] as usize;
        block * self.block_size + off
    }
}

impl RangeMin for PlusMinusOneRmq {
    fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi < self.values.len(), "invalid RMQ range");
        let b_lo = lo / self.block_size;
        let b_hi = hi / self.block_size;
        if b_lo == b_hi {
            return self.in_block_query(b_lo, lo % self.block_size, hi % self.block_size);
        }
        // Prefix of the first block, suffix of the last block.
        let left = self.in_block_query(b_lo, lo % self.block_size, self.block_size - 1);
        let right = self.in_block_query(b_hi, 0, hi % self.block_size);
        let mut best = if self.values[left] <= self.values[right] {
            left
        } else {
            right
        };
        // Whole blocks strictly in between.
        if b_lo + 1 < b_hi {
            let mid_block = self.block_table.query(b_lo + 1, b_hi - 1);
            let mid = mid_block * self.block_size + self.block_min_offset[mid_block] as usize;
            if self.values[mid] < self.values[best]
                || (self.values[mid] == self.values[best] && mid < best)
            {
                best = mid;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm1_sequence(len: usize, seed: u64) -> Vec<u32> {
        // Deterministic pseudo-random ±1 walk staying non-negative.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut values = Vec::with_capacity(len);
        let mut cur: u32 = 50;
        for _ in 0..len {
            values.push(cur);
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) & 1 == 1 || cur == 0 {
                cur += 1;
            } else {
                cur -= 1;
            }
        }
        values
    }

    fn check_all_ranges(values: Vec<u32>) {
        let naive = NaiveRmq::new(values.clone());
        let sparse = SparseTableRmq::new(values.clone());
        let pm1 = PlusMinusOneRmq::new(values.clone());
        let n = values.len();
        for lo in 0..n {
            for hi in lo..n {
                let expected = naive.query(lo, hi);
                let got_sparse = sparse.query(lo, hi);
                let got_pm1 = pm1.query(lo, hi);
                assert_eq!(
                    values[got_sparse], values[expected],
                    "sparse value mismatch on [{lo},{hi}]"
                );
                assert_eq!(
                    values[got_pm1], values[expected],
                    "±1 value mismatch on [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn tiny_sequences() {
        check_all_ranges(vec![5]);
        check_all_ranges(vec![2, 3]);
        check_all_ranges(vec![3, 2]);
        check_all_ranges(vec![1, 2, 1, 0, 1, 2, 3, 2]);
    }

    #[test]
    fn random_walks_of_many_sizes() {
        for len in [1, 2, 3, 7, 16, 33, 64, 100, 257] {
            for seed in 0..3 {
                check_all_ranges(pm1_sequence(len, seed));
            }
        }
    }

    #[test]
    fn sparse_table_on_arbitrary_values() {
        let values = vec![9, 3, 7, 1, 8, 12, 10, 1, 0, 4, 4, 2];
        let naive = NaiveRmq::new(values.clone());
        let sparse = SparseTableRmq::new(values.clone());
        for lo in 0..values.len() {
            for hi in lo..values.len() {
                assert_eq!(values[sparse.query(lo, hi)], values[naive.query(lo, hi)]);
            }
        }
    }

    #[test]
    fn leftmost_tie_breaking_naive() {
        let naive = NaiveRmq::new(vec![2, 1, 1, 1, 2]);
        assert_eq!(naive.query(0, 4), 1);
        assert_eq!(naive.query(2, 4), 2);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn out_of_range_panics() {
        let naive = NaiveRmq::new(vec![1, 2, 3]);
        naive.query(1, 3);
    }
}
