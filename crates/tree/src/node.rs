//! Node and position identifiers and node labels of the parse tree.

use redet_syntax::Symbol;
use std::fmt;

/// Identifier of a node of a [`crate::ParseTree`].
///
/// Node ids are dense indices in *preorder* (document order): `NodeId(0)` is
/// the root, and for any node its id is smaller than the ids of all its
/// descendants. This makes ancestor tests and "document order" comparisons a
/// simple integer comparison against subtree intervals.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a raw index (used by sibling crates that build
    /// per-node tables).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("parse tree larger than u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a *position* (a leaf of the parse tree), in left-to-right
/// order. `PosId(0)` is always the phantom begin marker `#`, and the largest
/// position id is the phantom end marker `$` (restriction R1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PosId(pub(crate) u32);

impl PosId {
    /// Raw index of this position.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a position id from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        PosId(u32::try_from(index).expect("too many positions"))
    }
}

impl fmt::Debug for PosId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The label of a parse-tree node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// The phantom begin marker `#` introduced by restriction (R1).
    Begin,
    /// The phantom end marker `$` introduced by restriction (R1).
    End,
    /// A position labeled with an alphabet symbol.
    Position(Symbol),
    /// Concatenation `·`.
    Concat,
    /// Union `+`.
    Union,
    /// Option `?`.
    Optional,
    /// Kleene star `∗`.
    Star,
    /// Numeric occurrence indicator `{min, max}` (`max = None` means `∞`).
    Repeat(u32, Option<u32>),
}

impl NodeKind {
    /// Whether this node is a leaf of the parse tree (a position or a
    /// phantom marker).
    #[inline]
    pub fn is_leaf(self) -> bool {
        matches!(
            self,
            NodeKind::Begin | NodeKind::End | NodeKind::Position(_)
        )
    }

    /// Whether this node is a position labeled with an alphabet symbol
    /// (phantom markers excluded).
    #[inline]
    pub fn symbol(self) -> Option<Symbol> {
        match self {
            NodeKind::Position(sym) => Some(sym),
            _ => None,
        }
    }

    /// Whether this node allows its subexpression to iterate at least twice,
    /// i.e. whether `Follow` edges can loop through it (a `∗` node, or a
    /// numeric occurrence with an upper bound of at least 2).
    #[inline]
    pub fn is_iterating(self) -> bool {
        match self {
            NodeKind::Star => true,
            NodeKind::Repeat(_, None) => true,
            NodeKind::Repeat(_, Some(max)) => max >= 2,
            _ => false,
        }
    }

    /// Whether this node is a binary operator.
    #[inline]
    pub fn is_binary(self) -> bool {
        matches!(self, NodeKind::Concat | NodeKind::Union)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Begin.is_leaf());
        assert!(NodeKind::End.is_leaf());
        assert!(NodeKind::Position(Symbol::from_index(0)).is_leaf());
        assert!(!NodeKind::Concat.is_leaf());
        assert_eq!(
            NodeKind::Position(Symbol::from_index(3)).symbol(),
            Some(Symbol::from_index(3))
        );
        assert_eq!(NodeKind::Begin.symbol(), None);
        assert!(NodeKind::Star.is_iterating());
        assert!(NodeKind::Repeat(2, Some(2)).is_iterating());
        assert!(NodeKind::Repeat(1, None).is_iterating());
        assert!(!NodeKind::Repeat(1, Some(1)).is_iterating());
        assert!(!NodeKind::Optional.is_iterating());
        assert!(NodeKind::Concat.is_binary());
        assert!(NodeKind::Union.is_binary());
        assert!(!NodeKind::Star.is_binary());
    }

    #[test]
    fn ids_round_trip() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(PosId::from_index(3).index(), 3);
        assert_eq!(format!("{:?}", NodeId::from_index(2)), "n2");
        assert_eq!(format!("{:?}", PosId::from_index(2)), "p2");
    }
}
