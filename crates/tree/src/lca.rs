//! Constant-time lowest-common-ancestor queries.
//!
//! After linear-time preprocessing ([Harel & Tarjan; Bender et al.], cited as
//! [1, 15] in the paper) LCA queries are answered in constant time. The
//! construction is the classical reduction to ±1 RMQ over the depth sequence
//! of an Euler tour of the tree.

use crate::node::NodeId;
use crate::parse_tree::ParseTree;
use crate::rmq::PlusMinusOneRmq;

/// Preprocessed lowest-common-ancestor structure over a [`ParseTree`].
///
/// ```
/// use redet_syntax::parse;
/// use redet_tree::{Lca, ParseTree};
///
/// let (e, _) = parse("(a b)* c").unwrap();
/// let tree = ParseTree::build(&e);
/// let lca = Lca::new(&tree);
/// let positions = tree.positions();
/// let l = lca.query(positions[1], positions[2]); // LCA of the a and b leaves
/// assert!(tree.is_ancestor(l, positions[1]));
/// assert!(tree.is_ancestor(l, positions[2]));
/// ```
#[derive(Clone, Debug)]
pub struct Lca {
    /// Euler tour of node ids (2·n − 1 entries).
    euler: Vec<NodeId>,
    /// First occurrence of each node in the Euler tour.
    first_occurrence: Vec<u32>,
    /// ±1 RMQ over the depth sequence of the Euler tour.
    rmq: PlusMinusOneRmq,
}

impl Lca {
    /// Preprocesses `tree` in `O(|tree|)` time.
    pub fn new(tree: &ParseTree) -> Self {
        let n = tree.num_nodes();
        let mut euler = Vec::with_capacity(2 * n);
        let mut depths = Vec::with_capacity(2 * n);
        let mut first_occurrence = vec![u32::MAX; n];

        // Iterative Euler tour: (node, next child index to visit).
        let mut stack: Vec<(NodeId, u8)> = vec![(tree.root(), 0)];
        while let Some((node, child_idx)) = stack.pop() {
            if child_idx == 0 && first_occurrence[node.index()] == u32::MAX {
                first_occurrence[node.index()] = euler.len() as u32;
            }
            euler.push(node);
            depths.push(tree.depth(node));
            let child = match child_idx {
                0 => tree.lchild(node),
                1 => tree.rchild(node),
                _ => None,
            };
            match child {
                Some(c) => {
                    stack.push((node, child_idx + 1));
                    stack.push((c, 0));
                }
                None => {
                    // If we were about to visit a right child that does not
                    // exist, do not revisit the node again: only re-push when
                    // a further child might exist.
                    if child_idx == 0 && tree.rchild(node).is_some() {
                        // Unary node stored its single child as lchild = None?
                        // (cannot happen: rchild implies lchild); kept for
                        // completeness.
                        stack.push((node, 1));
                    }
                }
            }
        }

        Lca {
            euler,
            first_occurrence,
            rmq: PlusMinusOneRmq::new(depths),
        }
    }

    /// The lowest common ancestor of `u` and `v`.
    #[inline]
    pub fn query(&self, u: NodeId, v: NodeId) -> NodeId {
        NodeId::from_index(self.query_ids(u.index() as u32, v.index() as u32) as usize)
    }

    /// The LCA over raw `u32` node indices — the allocation- and
    /// branch-minimal form used by the flat `checkIfFollow` tables.
    #[inline]
    pub fn query_ids(&self, u: u32, v: u32) -> u32 {
        let fu = self.first_occurrence[u as usize] as usize;
        let fv = self.first_occurrence[v as usize] as usize;
        let (lo, hi) = if fu <= fv { (fu, fv) } else { (fv, fu) };
        self.euler[self.rmq.query_inline(lo, hi)].index() as u32
    }

    /// Length of the Euler tour (exposed for tests and diagnostics).
    pub fn tour_len(&self) -> usize {
        self.euler.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::parse;

    fn tree(input: &str) -> ParseTree {
        let (e, _) = parse(input).unwrap();
        ParseTree::build(&e)
    }

    fn check_against_naive(t: &ParseTree) {
        let lca = Lca::new(t);
        for u in t.node_ids() {
            for v in t.node_ids() {
                assert_eq!(
                    lca.query(u, v),
                    t.lca_naive(u, v),
                    "LCA({u:?},{v:?}) mismatch"
                );
            }
        }
    }

    #[test]
    fn matches_naive_on_paper_expressions() {
        for input in [
            "a",
            "a b",
            "(a b + b b? a)*",
            "(a* b a + b b)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7)*",
            "a? b? c? d? e? f? g? h?",
            "((((a b) c) d) e) f",
            "a (b (c (d (e f))))",
        ] {
            check_against_naive(&tree(input));
        }
    }

    #[test]
    fn lca_of_node_with_itself() {
        let t = tree("(a b)* c");
        let lca = Lca::new(&t);
        for n in t.node_ids() {
            assert_eq!(lca.query(n, n), n);
        }
    }

    #[test]
    fn lca_with_ancestor_is_the_ancestor() {
        let t = tree("(c?((a b*)(a? c)))*(b a)");
        let lca = Lca::new(&t);
        for n in t.node_ids() {
            let mut cur = Some(n);
            while let Some(x) = cur {
                assert_eq!(lca.query(n, x), x);
                assert_eq!(lca.query(x, n), x);
                cur = t.parent(x);
            }
        }
    }

    #[test]
    fn tour_has_expected_length() {
        let t = tree("(a b)* c");
        let lca = Lca::new(&t);
        // Euler tour of a tree with n nodes and n-1 edges has 2n-1 entries.
        assert_eq!(lca.tour_len(), 2 * t.num_nodes() - 1);
    }
}
