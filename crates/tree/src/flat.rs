//! Dense struct-of-arrays tables backing the hot `checkIfFollow` path.
//!
//! [`crate::TreeAnalysis`] answers Theorem 2.4 queries millions of times per
//! matched word, so the data it touches per query matters more than the
//! asymptotics. The arena [`ParseTree`] stores one ~40-byte `Node` struct per
//! node with `Option<NodeId>` child pointers and an enum label; a single
//! `checkIfFollow` through it costs half a dozen dependent loads of mostly
//! cold fields. [`FlatTables`] re-materializes exactly the per-query facts as
//! dense `u32` arrays in preorder:
//!
//! * `subtree_end[n]` — exclusive end of `n`'s preorder interval, so the
//!   reflexive ancestor test is two comparisons;
//! * `concat_rchild[n]` — the right child when `lab(n) = ·`, else
//!   [`NONE`]: one load answers both "is this a concatenation?" and "where
//!   does its right child start?" (the left child is always `n + 1` in
//!   preorder);
//! * `p_star[n]` — the lowest iterating ancestor-or-self, or [`NONE`];
//! * `parent[n]` — the parent, or [`NONE`] for the root (used by the
//!   chain-walking batch matcher, not by `checkIfFollow` itself);
//! * per position `p`: its leaf node `leaf[p]` and the
//!   `pSupFirst`/`pSupLast` nodes of that leaf, with the root (`0`) standing
//!   in for "undefined" — the root is an ancestor of everything, which makes
//!   the Lemma 2.3 membership test unconditionally two comparisons;
//! * `nullable` — per-node nullability as a bitset;
//! * `can_end` — per-position "is `$ ∈ Follow(p)`" as a bitset, precomputed
//!   once so word acceptance is a single bit test.
//!
//! All accessors are `#[inline]` and take/return raw `u32` indices; the
//! typed wrappers live on [`crate::TreeAnalysis`].

use crate::lca::Lca;
use crate::node::{NodeId, NodeKind, PosId};
use crate::parse_tree::ParseTree;
use crate::props::NodeProps;
use crate::rmq::SparseTableRmq;

/// Sentinel for "no node" in the flat `u32` tables.
pub const NONE: u32 = u32::MAX;

/// The dense per-node / per-position tables described in the module docs.
///
/// Position-to-position LCA queries (the only kind `checkIfFollow` issues)
/// additionally bypass the Euler-tour machinery: for document-ordered leaves,
/// `LCA(leaf_i, leaf_j)` with `i < j` is the minimum-depth node among the
/// LCAs of *consecutive* leaf pairs in `[i, j)`, so one flat sparse-table
/// RMQ over an `m − 1` array answers it in two same-row loads. The table is
/// `O(m log m)` words — a pragmatic trade against the pointer-chasing
/// `O(|e|)` ±1 structure, which remains in place for node-level queries.
#[derive(Clone, Debug)]
pub struct FlatTables {
    subtree_end: Vec<u32>,
    concat_rchild: Vec<u32>,
    p_star: Vec<u32>,
    parent: Vec<u32>,
    nullable: Vec<u64>,
    leaf: Vec<u32>,
    psf: Vec<u32>,
    psl: Vec<u32>,
    can_end: Vec<u64>,
    /// `leaf_lca_node[i]` — the LCA of leaves `i` and `i + 1`.
    leaf_lca_node: Vec<u32>,
    /// RMQ over the depths of `leaf_lca_node`.
    leaf_lca_rmq: SparseTableRmq,
}

impl FlatTables {
    /// Builds the tables in one `O(|tree|)` pass (the `can_end` bitset does
    /// one `checkIfFollow`-shaped probe per position against `lca`).
    pub fn build(tree: &ParseTree, props: &NodeProps, lca: &Lca) -> Self {
        let n = tree.num_nodes();
        let m = tree.num_positions();

        let mut subtree_end = Vec::with_capacity(n);
        let mut concat_rchild = Vec::with_capacity(n);
        let mut p_star = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        let mut nullable = vec![0u64; n.div_ceil(64)];
        for id in 0..n {
            let node = NodeId::from_index(id);
            subtree_end.push(tree.subtree_end(node) as u32);
            concat_rchild.push(match tree.kind(node) {
                NodeKind::Concat => tree.rchild(node).expect("concat has children").index() as u32,
                _ => NONE,
            });
            p_star.push(props.p_star(node).map_or(NONE, |x| x.index() as u32));
            parent.push(tree.parent(node).map_or(NONE, |x| x.index() as u32));
            if props.nullable(node) {
                nullable[id / 64] |= 1 << (id % 64);
            }
        }

        let mut leaf = Vec::with_capacity(m);
        let mut psf = Vec::with_capacity(m);
        let mut psl = Vec::with_capacity(m);
        for p in 0..m {
            let node = tree.pos_node(PosId::from_index(p));
            leaf.push(node.index() as u32);
            psf.push(props.p_sup_first(node).map_or(0, |x| x.index() as u32));
            psl.push(props.p_sup_last(node).map_or(0, |x| x.index() as u32));
        }

        // Consecutive-leaf LCAs and the RMQ over their depths.
        let mut leaf_lca_node = Vec::with_capacity(m.saturating_sub(1));
        let mut leaf_lca_depth = Vec::with_capacity(m.saturating_sub(1));
        for w in leaf.windows(2) {
            let anc = lca.query_ids(w[0], w[1]);
            leaf_lca_node.push(anc);
            leaf_lca_depth.push(tree.depth(NodeId::from_index(anc as usize)));
        }

        let mut tables = FlatTables {
            subtree_end,
            concat_rchild,
            p_star,
            parent,
            nullable,
            leaf,
            psf,
            psl,
            can_end: vec![0u64; m.div_ceil(64)],
            leaf_lca_node,
            leaf_lca_rmq: SparseTableRmq::new(leaf_lca_depth),
        };
        let end = m - 1;
        for p in 0..m {
            if tables.follow_ids(p as u32, end as u32) {
                tables.can_end[p / 64] |= 1 << (p % 64);
            }
        }
        tables
    }

    /// The LCA of the leaves of positions `p` and `q`, via the leaf-pair
    /// RMQ (no Euler tour on the hot path).
    #[inline]
    pub fn leaf_lca(&self, p: u32, q: u32) -> u32 {
        if p == q {
            return self.leaf(p);
        }
        let (lo, hi) = if p < q { (p, q) } else { (q, p) };
        self.leaf_lca_node[self.leaf_lca_rmq.query_inline(lo as usize, hi as usize - 1)]
    }

    /// Reflexive ancestor test over raw preorder ids: `a ≼ d`.
    #[inline]
    pub fn is_ancestor_ids(&self, a: u32, d: u32) -> bool {
        a <= d && d < self.subtree_end[a as usize]
    }

    /// Exclusive end of the preorder interval of the subtree rooted at `n`.
    #[inline]
    pub fn subtree_end_id(&self, n: u32) -> u32 {
        self.subtree_end[n as usize]
    }

    /// The right child of `n` when `n` is a concatenation, else [`NONE`].
    #[inline]
    pub fn concat_rchild(&self, n: u32) -> u32 {
        self.concat_rchild[n as usize]
    }

    /// The lowest iterating ancestor-or-self of `n`, or [`NONE`].
    #[inline]
    pub fn p_star_id(&self, n: u32) -> u32 {
        self.p_star[n as usize]
    }

    /// The parent of `n`, or [`NONE`] for the root.
    #[inline]
    pub fn parent_id(&self, n: u32) -> u32 {
        self.parent[n as usize]
    }

    /// Whether `ε ∈ L(e/n)` (bitset lookup).
    #[inline]
    pub fn nullable_id(&self, n: u32) -> bool {
        self.nullable[n as usize / 64] & (1 << (n % 64)) != 0
    }

    /// The leaf node of position `p`.
    #[inline]
    pub fn leaf(&self, p: u32) -> u32 {
        self.leaf[p as usize]
    }

    /// `pSupFirst` of position `p`'s leaf (the root when undefined).
    #[inline]
    pub fn psf(&self, p: u32) -> u32 {
        self.psf[p as usize]
    }

    /// `pSupLast` of position `p`'s leaf (the root when undefined).
    #[inline]
    pub fn psl(&self, p: u32) -> u32 {
        self.psl[p as usize]
    }

    /// Whether position `p` can end a word (`$ ∈ Follow(p)`), precomputed.
    #[inline]
    pub fn can_end(&self, p: u32) -> bool {
        self.can_end[p as usize / 64] & (1 << (p % 64)) != 0
    }

    /// Lemma 2.3 (1) over raw ids: position `p` ∈ `First(n)`.
    #[inline]
    pub fn in_first_ids(&self, p: u32, n: u32) -> bool {
        let leaf = self.leaf(p);
        self.is_ancestor_ids(n, leaf) && self.is_ancestor_ids(self.psf(p), n)
    }

    /// Lemma 2.3 (2) over raw ids: position `p` ∈ `Last(n)`.
    #[inline]
    pub fn in_last_ids(&self, p: u32, n: u32) -> bool {
        let leaf = self.leaf(p);
        self.is_ancestor_ids(n, leaf) && self.is_ancestor_ids(self.psl(p), n)
    }

    /// Theorem 2.4 over raw ids: whether `q ∈ Follow(p)`.
    #[inline]
    pub fn follow_ids(&self, p: u32, q: u32) -> bool {
        let pn = self.leaf(p);
        let qn = self.leaf(q);
        let n = self.leaf_lca(p, q);

        // Case (1): lab(n) = ·, q ∈ First(Rchild(n)), p ∈ Last(Lchild(n)).
        // In preorder the left child of n is n + 1.
        let r = self.concat_rchild(n);
        if r != NONE
            && self.is_ancestor_ids(r, qn)
            && self.is_ancestor_ids(self.psf(q), r)
            && self.is_ancestor_ids(n + 1, pn)
            && self.is_ancestor_ids(self.psl(p), n + 1)
        {
            return true;
        }

        // Case (2): q ∈ First(s), p ∈ Last(s) for s the lowest iterating
        // ancestor of n.
        let s = self.p_star_id(n);
        s != NONE
            && self.is_ancestor_ids(s, qn)
            && self.is_ancestor_ids(self.psf(q), s)
            && self.is_ancestor_ids(s, pn)
            && self.is_ancestor_ids(self.psl(p), s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TreeAnalysis;
    use redet_syntax::parse;

    #[test]
    fn flat_tables_mirror_the_pointer_structures() {
        for input in [
            "a",
            "(a b + b b? a)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(a b){2,3} c",
            "a? b? c? d?",
        ] {
            let (e, _) = parse(input).unwrap();
            let analysis = TreeAnalysis::build(&e);
            let tree = analysis.tree();
            let props = analysis.props();
            let flat = analysis.flat();
            for id in 0..tree.num_nodes() {
                let node = NodeId::from_index(id);
                assert_eq!(
                    flat.subtree_end_id(id as u32),
                    tree.subtree_end(node) as u32
                );
                assert_eq!(
                    flat.parent_id(id as u32),
                    tree.parent(node).map_or(NONE, |x| x.index() as u32)
                );
                assert_eq!(flat.nullable_id(id as u32), props.nullable(node), "{input}");
                let expected_rchild = match tree.kind(node) {
                    NodeKind::Concat => tree.rchild(node).unwrap().index() as u32,
                    _ => NONE,
                };
                assert_eq!(flat.concat_rchild(id as u32), expected_rchild);
            }
            for p in 0..tree.num_positions() {
                let pos = PosId::from_index(p);
                // Compare against follow_kind, which still runs on the
                // pointer-based NodeProps/Lca machinery — an independent
                // oracle for the flat follow_ids/can_end path.
                assert_eq!(
                    flat.can_end(p as u32),
                    analysis.follow_kind(pos, tree.end_pos()).is_some(),
                    "{input}: can_end({pos:?})"
                );
                for q in 0..tree.num_positions() {
                    let qos = PosId::from_index(q);
                    assert_eq!(
                        flat.follow_ids(p as u32, q as u32),
                        analysis.follow_kind(pos, qos).is_some(),
                        "{input}: follow({pos:?},{qos:?})"
                    );
                }
            }
        }
    }
}
