//! Arena representation of the parse tree of a regular expression.

use crate::node::{NodeId, NodeKind, PosId};
use redet_syntax::{Regex, Symbol};

/// A single node of the parse tree.
#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    lchild: Option<NodeId>,
    rchild: Option<NodeId>,
    /// Exclusive end of this node's preorder interval: the subtree rooted at
    /// node `n` is exactly the ids `n.index() .. subtree_end`.
    subtree_end: u32,
    depth: u32,
    /// Position index if this node is a leaf.
    pos: Option<PosId>,
}

/// The parse tree of a regular expression, wrapped into the `(# e′) $` form
/// of restriction (R1).
///
/// Nodes are stored in an arena indexed by [`NodeId`] in preorder, so
/// ancestor tests reduce to interval containment and "document order" is id
/// order. Leaves are the *positions* of the expression; the phantom markers
/// `#` and `$` are positions `p0` and `p_{m-1}`.
///
/// ```
/// use redet_syntax::parse;
/// use redet_tree::ParseTree;
///
/// let (e, _) = parse("(a b + b b? a)*").unwrap();
/// let tree = ParseTree::build(&e);
/// // 5 alphabet positions plus # and $.
/// assert_eq!(tree.num_positions(), 7);
/// assert!(tree.is_ancestor(tree.root(), tree.expr_root()));
/// ```
#[derive(Clone, Debug)]
pub struct ParseTree {
    nodes: Vec<Node>,
    /// Leaves in left-to-right order (including `#` and `$`).
    positions: Vec<NodeId>,
    /// CSR index over positions by symbol: the positions labeled with symbol
    /// `s` are `sym_positions[sym_offsets[s] .. sym_offsets[s + 1]]`. One
    /// flat allocation instead of a `Vec` per symbol, so the per-symbol
    /// candidate scan of the k-occurrence matcher is two loads and a slice.
    sym_offsets: Vec<u32>,
    sym_positions: Vec<PosId>,
    /// Symbol of each position as a dense `u32` (`u32::MAX` for `#`/`$`).
    pos_symbol: Vec<u32>,
    /// Root of the embedded user expression `e′`.
    expr_root: NodeId,
}

impl ParseTree {
    /// Builds the parse tree of `regex`, adding the phantom `#`/`$` markers.
    ///
    /// The input should already satisfy restrictions (R2) and (R3) (see
    /// `redet_syntax::normalize`); this is asserted in debug builds. The
    /// algorithms remain correct on non-normalized input but their running
    /// time is then no longer guaranteed to be linear in the number of
    /// positions.
    pub fn build(regex: &Regex) -> Self {
        debug_assert!(
            redet_syntax::normalize::satisfies_r2_r3(regex),
            "ParseTree::build expects an (R2)/(R3)-normalized expression"
        );
        let size_hint = regex.size() + 4;
        let mut builder = Builder {
            nodes: Vec::with_capacity(size_hint),
            positions: Vec::with_capacity(regex.num_positions() + 2),
            max_symbol: 0,
        };

        // e  =  (# e′) $   — root is the outer concatenation.
        let root = builder.alloc(NodeKind::Concat, None, 0);
        let inner = builder.alloc(NodeKind::Concat, Some(root), 1);
        builder.nodes[root.index()].lchild = Some(inner);
        let begin = builder.alloc_leaf(NodeKind::Begin, Some(inner), 2);
        builder.nodes[inner.index()].lchild = Some(begin);
        let expr_root = builder.build_expr(regex, inner);
        builder.nodes[inner.index()].rchild = Some(expr_root);
        builder.close(inner);
        let end = builder.alloc_leaf(NodeKind::End, Some(root), 1);
        builder.nodes[root.index()].rchild = Some(end);
        builder.close(root);

        // CSR per-symbol index: count, prefix-sum, scatter.
        let num_symbols = builder.max_symbol;
        let mut pos_symbol = vec![u32::MAX; builder.positions.len()];
        let mut counts = vec![0u32; num_symbols];
        for (i, &node) in builder.positions.iter().enumerate() {
            if let NodeKind::Position(sym) = builder.nodes[node.index()].kind {
                pos_symbol[i] = sym.index() as u32;
                counts[sym.index()] += 1;
            }
        }
        let mut sym_offsets = Vec::with_capacity(num_symbols + 1);
        let mut total = 0u32;
        sym_offsets.push(0);
        for &c in &counts {
            total += c;
            sym_offsets.push(total);
        }
        let mut sym_positions = vec![PosId(0); total as usize];
        let mut cursor: Vec<u32> = sym_offsets[..num_symbols].to_vec();
        for (i, &s) in pos_symbol.iter().enumerate() {
            if s != u32::MAX {
                sym_positions[cursor[s as usize] as usize] = PosId::from_index(i);
                cursor[s as usize] += 1;
            }
        }

        ParseTree {
            nodes: builder.nodes,
            positions: builder.positions,
            sym_offsets,
            sym_positions,
            pos_symbol,
            expr_root,
        }
    }

    /// Number of nodes in the tree (including the R1 wrapper nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of positions, including the phantom `#` and `$`.
    #[inline]
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Number of distinct symbol indices the per-symbol tables cover.
    #[inline]
    pub fn num_symbols(&self) -> usize {
        self.sym_offsets.len() - 1
    }

    /// The root of the whole tree (the outer concatenation with `$`).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The root of the embedded user expression `e′`.
    #[inline]
    pub fn expr_root(&self) -> NodeId {
        self.expr_root
    }

    /// The label of node `n`.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// The parent of `n`, or `None` for the root.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// The left child of `n` (`None` for leaves).
    #[inline]
    pub fn lchild(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].lchild
    }

    /// The right child of `n` (`None` for leaves and unary nodes).
    #[inline]
    pub fn rchild(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].rchild
    }

    /// The depth of `n` (root has depth 0).
    #[inline]
    pub fn depth(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].depth
    }

    /// Whether `ancestor ≼ descendant` in the (reflexive) ancestor order.
    #[inline]
    pub fn is_ancestor(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        let a = &self.nodes[ancestor.index()];
        ancestor.0 <= descendant.0 && descendant.0 < a.subtree_end
    }

    /// Whether `ancestor ≺ descendant` strictly.
    #[inline]
    pub fn is_strict_ancestor(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        ancestor != descendant && self.is_ancestor(ancestor, descendant)
    }

    /// Exclusive end of the preorder interval of the subtree rooted at `n`.
    #[inline]
    pub fn subtree_end(&self, n: NodeId) -> usize {
        self.nodes[n.index()].subtree_end as usize
    }

    /// Iterates over all node ids in preorder.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over the children of `n` (left then right).
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = NodeId> {
        let node = &self.nodes[n.index()];
        node.lchild.into_iter().chain(node.rchild)
    }

    /// All positions in left-to-right order (including `#` and `$`).
    #[inline]
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// The node of position `p`.
    #[inline]
    pub fn pos_node(&self, p: PosId) -> NodeId {
        self.positions[p.index()]
    }

    /// The position index of node `n`, if `n` is a leaf.
    #[inline]
    pub fn node_pos(&self, n: NodeId) -> Option<PosId> {
        self.nodes[n.index()].pos
    }

    /// The alphabet symbol of position `p` (`None` for `#` and `$`).
    #[inline]
    pub fn symbol_at(&self, p: PosId) -> Option<Symbol> {
        match self.pos_symbol[p.index()] {
            u32::MAX => None,
            s => Some(Symbol::from_index(s as usize)),
        }
    }

    /// The symbol index of position `p` as a raw `u32` (`u32::MAX` for the
    /// phantom `#`/`$` markers) — the allocation-free form used by the flat
    /// match loops.
    #[inline]
    pub fn symbol_index_at(&self, p: PosId) -> u32 {
        self.pos_symbol[p.index()]
    }

    /// The phantom begin position `#`.
    #[inline]
    pub fn begin_pos(&self) -> PosId {
        PosId(0)
    }

    /// The phantom end position `$`.
    #[inline]
    pub fn end_pos(&self) -> PosId {
        PosId::from_index(self.positions.len() - 1)
    }

    /// Positions labeled with `sym`, in left-to-right order. Symbols unknown
    /// to this expression yield an empty slice.
    #[inline]
    pub fn positions_of_symbol(&self, sym: Symbol) -> &[PosId] {
        let s = sym.index();
        if s + 1 >= self.sym_offsets.len() {
            return &[];
        }
        let lo = self.sym_offsets[s] as usize;
        let hi = self.sym_offsets[s + 1] as usize;
        &self.sym_positions[lo..hi]
    }

    /// Iterates over the alphabet positions (excluding `#`/`$`) as
    /// `(PosId, Symbol)` pairs in left-to-right order.
    pub fn symbol_positions(&self) -> impl Iterator<Item = (PosId, Symbol)> + '_ {
        self.pos_symbol
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != u32::MAX)
            .map(|(i, &s)| (PosId::from_index(i), Symbol::from_index(s as usize)))
    }

    /// The lowest common ancestor of `u` and `v`, computed naively by
    /// climbing parent pointers. `O(depth)` — used for testing and as a
    /// fallback; use [`crate::Lca`] for constant-time queries.
    pub fn lca_naive(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut u, mut v) = (u, v);
        while self.depth(u) > self.depth(v) {
            u = self.parent(u).expect("depth > 0 implies a parent");
        }
        while self.depth(v) > self.depth(u) {
            v = self.parent(v).expect("depth > 0 implies a parent");
        }
        while u != v {
            u = self.parent(u).expect("distinct roots are impossible");
            v = self.parent(v).expect("distinct roots are impossible");
        }
        u
    }
}

struct Builder {
    nodes: Vec<Node>,
    positions: Vec<NodeId>,
    max_symbol: usize,
}

impl Builder {
    fn alloc(&mut self, kind: NodeKind, parent: Option<NodeId>, depth: u32) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent,
            lchild: None,
            rchild: None,
            subtree_end: 0,
            depth,
            pos: None,
        });
        id
    }

    fn alloc_leaf(&mut self, kind: NodeKind, parent: Option<NodeId>, depth: u32) -> NodeId {
        let id = self.alloc(kind, parent, depth);
        let pos = PosId::from_index(self.positions.len());
        self.nodes[id.index()].pos = Some(pos);
        self.positions.push(id);
        self.close(id);
        if let NodeKind::Position(sym) = kind {
            self.max_symbol = self.max_symbol.max(sym.index() + 1);
        }
        id
    }

    fn close(&mut self, id: NodeId) {
        self.nodes[id.index()].subtree_end =
            u32::try_from(self.nodes.len()).expect("tree too large");
    }

    fn build_expr(&mut self, regex: &Regex, parent: NodeId) -> NodeId {
        let depth = self.nodes[parent.index()].depth + 1;
        match regex {
            Regex::Symbol(sym) => self.alloc_leaf(NodeKind::Position(*sym), Some(parent), depth),
            Regex::Concat(l, r) => self.build_binary(NodeKind::Concat, l, r, parent, depth),
            Regex::Union(l, r) => self.build_binary(NodeKind::Union, l, r, parent, depth),
            Regex::Optional(inner) => self.build_unary(NodeKind::Optional, inner, parent, depth),
            Regex::Star(inner) => self.build_unary(NodeKind::Star, inner, parent, depth),
            Regex::Repeat(inner, min, max) => {
                self.build_unary(NodeKind::Repeat(*min, *max), inner, parent, depth)
            }
        }
    }

    fn build_binary(
        &mut self,
        kind: NodeKind,
        l: &Regex,
        r: &Regex,
        parent: NodeId,
        depth: u32,
    ) -> NodeId {
        let id = self.alloc(kind, Some(parent), depth);
        let lchild = self.build_expr(l, id);
        self.nodes[id.index()].lchild = Some(lchild);
        let rchild = self.build_expr(r, id);
        self.nodes[id.index()].rchild = Some(rchild);
        self.close(id);
        id
    }

    fn build_unary(&mut self, kind: NodeKind, inner: &Regex, parent: NodeId, depth: u32) -> NodeId {
        let id = self.alloc(kind, Some(parent), depth);
        let child = self.build_expr(inner, id);
        self.nodes[id.index()].lchild = Some(child);
        self.close(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::parse;

    fn tree(input: &str) -> ParseTree {
        let (e, _) = parse(input).unwrap();
        ParseTree::build(&e)
    }

    #[test]
    fn r1_wrapping_shape() {
        let t = tree("a");
        // root = Concat(Concat(#, a), $): 5 nodes, 3 positions.
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_positions(), 3);
        assert_eq!(t.kind(t.root()), NodeKind::Concat);
        let inner = t.lchild(t.root()).unwrap();
        assert_eq!(t.kind(inner), NodeKind::Concat);
        assert_eq!(t.kind(t.lchild(inner).unwrap()), NodeKind::Begin);
        assert_eq!(t.kind(t.rchild(t.root()).unwrap()), NodeKind::End);
        assert!(matches!(t.kind(t.expr_root()), NodeKind::Position(_)));
        assert_eq!(t.symbol_at(t.begin_pos()), None);
        assert_eq!(t.symbol_at(t.end_pos()), None);
    }

    #[test]
    fn positions_are_left_to_right() {
        let (e, sigma) = parse("(a b + b b? a)*").unwrap();
        let t = ParseTree::build(&e);
        assert_eq!(t.num_positions(), 7);
        let names: Vec<_> = t
            .positions()
            .iter()
            .map(|&n| match t.kind(n) {
                NodeKind::Begin => "#".to_owned(),
                NodeKind::End => "$".to_owned(),
                NodeKind::Position(sym) => sigma.name(sym).to_owned(),
                other => panic!("non-leaf position {other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["#", "a", "b", "b", "b", "a", "$"]);
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        assert_eq!(
            t.positions_of_symbol(a),
            &[PosId::from_index(1), PosId::from_index(5)]
        );
        assert_eq!(
            t.positions_of_symbol(b),
            &[
                PosId::from_index(2),
                PosId::from_index(3),
                PosId::from_index(4)
            ]
        );
    }

    #[test]
    fn preorder_and_ancestors() {
        let t = tree("(a b)* c");
        for n in t.node_ids() {
            for m in t.node_ids() {
                let expected = {
                    // Naive ancestor check by climbing.
                    let mut cur = Some(m);
                    let mut found = false;
                    while let Some(x) = cur {
                        if x == n {
                            found = true;
                            break;
                        }
                        cur = t.parent(x);
                    }
                    found
                };
                assert_eq!(t.is_ancestor(n, m), expected, "ancestor({n:?},{m:?})");
            }
        }
    }

    #[test]
    fn children_and_parent_are_consistent() {
        let t = tree("(c?((a b*)(a? c)))*(b a)");
        for n in t.node_ids() {
            for c in t.children(n) {
                assert_eq!(t.parent(c), Some(n));
                assert_eq!(t.depth(c), t.depth(n) + 1);
                assert!(t.is_strict_ancestor(n, c));
            }
            match t.kind(n) {
                k if k.is_leaf() => {
                    assert_eq!(t.children(n).count(), 0);
                    assert!(t.node_pos(n).is_some());
                }
                NodeKind::Concat | NodeKind::Union => assert_eq!(t.children(n).count(), 2),
                _ => assert_eq!(t.children(n).count(), 1),
            }
        }
    }

    #[test]
    fn naive_lca_agrees_with_structure() {
        let t = tree("(c?((a b*)(a? c)))*(b a)");
        for u in t.node_ids() {
            for v in t.node_ids() {
                let l = t.lca_naive(u, v);
                assert!(t.is_ancestor(l, u));
                assert!(t.is_ancestor(l, v));
                // No child of l is an ancestor of both.
                for c in t.children(l) {
                    assert!(!(t.is_ancestor(c, u) && t.is_ancestor(c, v)));
                }
            }
        }
    }

    #[test]
    fn symbol_positions_iterator() {
        let (e, sigma) = parse("(title, author+, year?)").unwrap();
        let t = ParseTree::build(&e);
        let syms: Vec<_> = t.symbol_positions().map(|(_, s)| s).collect();
        assert_eq!(
            syms,
            vec![
                sigma.lookup("title").unwrap(),
                sigma.lookup("author").unwrap(),
                sigma.lookup("year").unwrap()
            ]
        );
    }

    #[test]
    fn unknown_symbol_has_no_positions() {
        let (e, _) = parse("a b").unwrap();
        let t = ParseTree::build(&e);
        assert!(t.positions_of_symbol(Symbol::from_index(57)).is_empty());
    }
}
