//! Cross-oracle property tests for the bulk-scanning tokenizer.
//!
//! The tokenizer ships two scanners with identical semantics: the bulk
//! SWAR scanner (`Tokenizer::feed`, the production path) and the original
//! byte-at-a-time scanner (`Tokenizer::feed_scalar`, kept as the reference
//! oracle). This suite generates seeded random tag soup — well-formed tags,
//! attributes with hostile quoting, comments, CDATA sections, processing
//! instructions, doctypes with literals and internal subsets, malformed
//! markup, non-UTF-8 bytes, and names around the length cap — and checks
//! that bulk == scalar == whole-input scan, **tag for tag**, under *every*
//! chunk split of every document. Chunk boundaries are the hard part of the
//! bulk scanner (the borrow-from-chunk fast path must fall back to the name
//! buffer exactly when a tag straddles a boundary), so the sweep is
//! exhaustive rather than sampled.

use redet::schema::tokenizer::{Tag, Tokenizer};
use redet::SchemaBuilder;
use redet_core::Code;

/// A tiny deterministic RNG (splitmix-style) so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.below(items.len())]
    }
}

/// Appends one random document fragment: anything the tokenizer's grammar
/// knows about, including constructs it must *reject* identically.
fn push_fragment(doc: &mut Vec<u8>, rng: &mut Rng) {
    const NAMES: &[&str] = &["a", "doc", "item-x", "ns:tag", "日本語", "_u"];
    const TEXT: &[&str] = &["", "text", " >>] ?-- ", "a & b", "\n\t "];
    match rng.below(16) {
        0 | 1 => {
            // Start tag, possibly with attributes and tricky quotes.
            doc.push(b'<');
            doc.extend_from_slice(rng.pick(NAMES).as_bytes());
            for _ in 0..rng.below(3) {
                let quote = if rng.below(2) == 0 { b'\'' } else { b'"' };
                const VALUES: &[&[u8]] = &[b"v", b">", b"/>", b"<", b"'\""];
                doc.extend_from_slice(b" attr=");
                doc.push(quote);
                doc.extend_from_slice(rng.pick(VALUES));
                doc.push(quote);
            }
            if rng.below(3) == 0 {
                doc.push(b'/');
            }
            doc.push(b'>');
        }
        2 | 3 => {
            // End tag, sometimes with trailing whitespace.
            doc.extend_from_slice(b"</");
            doc.extend_from_slice(rng.pick(NAMES).as_bytes());
            if rng.below(3) == 0 {
                doc.push(b' ');
            }
            doc.push(b'>');
        }
        4 | 5 => doc.extend_from_slice(rng.pick(TEXT).as_bytes()),
        6 => {
            // Comment with embedded dashes and '>'s.
            const BODIES: &[&[u8]] = &[b" c ", b"-", b"--", b"->", b">", b"- >"];
            doc.extend_from_slice(b"<!--");
            doc.extend_from_slice(rng.pick(BODIES));
            doc.extend_from_slice(b"-->");
        }
        7 => {
            // CDATA with embedded ']'s and fake terminators.
            const BODIES: &[&[u8]] = &[b"<tag>", b"]", b"]]", b"] ]>", b">"];
            doc.extend_from_slice(b"<![CDATA[");
            doc.extend_from_slice(rng.pick(BODIES));
            doc.extend_from_slice(b"]]>");
        }
        8 => {
            // Processing instruction with embedded '?'s.
            const BODIES: &[&[u8]] = &[b"data", b"?", b"? >", b">"];
            doc.extend_from_slice(b"<?pi ");
            doc.extend_from_slice(rng.pick(BODIES));
            doc.extend_from_slice(b"?>");
        }
        9 => {
            // Doctype-ish constructs: literals may contain '>' and
            // brackets; internal subsets nest.
            const DOCTYPES: &[&[u8]] = &[
                b"<!DOCTYPE d>",
                b"<!DOCTYPE d SYSTEM 'x>y[z]'>",
                b"<!DOCTYPE d [ <!ENTITY e \">]\"> ]>",
                b"<![INCLUDE[ <x> ]]>",
                b"<!>",
            ];
            doc.extend_from_slice(rng.pick(DOCTYPES));
        }
        10 => {
            // Malformed markup the scanners must reject identically.
            const BROKEN: &[&[u8]] = &[
                b"<>", b"</>", b"</ >", b"< x>", b"<a=b>", b"</a b>", b"<a <b>", b"<a x <",
            ];
            doc.extend_from_slice(rng.pick(BROKEN));
        }
        11 => {
            // Hostile bytes: non-UTF-8 names, NULs, high bytes.
            const HOSTILE: &[&[u8]] = &[b"<\xFF\xFE>", b"<a\x80b>", b"\x00\x80\xFF", b"</\xC3(>"];
            doc.extend_from_slice(rng.pick(HOSTILE));
        }
        12 => {
            // Names around the cap boundary (exercised cheaply here; the
            // dedicated cap test covers the far side).
            let len = [1, 2, 63, 64, 65][rng.below(5)];
            doc.push(b'<');
            doc.extend(std::iter::repeat(b'n').take(len));
            doc.push(b'>');
        }
        _ => {
            // Nested well-formed runs keep some structure in the soup.
            doc.extend_from_slice(b"<r><s/></r>");
        }
    }
}

/// Owned rendering of a tag event, so streams can be compared across feeds.
fn render(tag: Tag<'_>) -> String {
    match tag {
        Tag::Open(n) => format!("<{}>", String::from_utf8_lossy(n)),
        Tag::OpenClose(n) => format!("<{}/>", String::from_utf8_lossy(n)),
        Tag::Close(n) => format!("</{}>", String::from_utf8_lossy(n)),
        Tag::Error(e) => format!("!{e}"),
    }
}

/// Scans `doc` split into `chunk`-byte pieces (0 = whole input) with the
/// chosen scanner, returning the rendered tag stream and final idleness.
fn scan(doc: &[u8], chunk: usize, scalar: bool) -> (Vec<String>, bool) {
    let mut tokenizer = Tokenizer::default();
    let mut tags = Vec::new();
    let mut sink = |tag: Tag<'_>| {
        tags.push(render(tag));
        true
    };
    let pieces: Vec<&[u8]> = if chunk == 0 {
        vec![doc]
    } else {
        doc.chunks(chunk).collect()
    };
    for piece in pieces {
        let consumed = if scalar {
            tokenizer.feed_scalar(piece, &mut sink)
        } else {
            tokenizer.feed(piece, &mut sink)
        };
        assert!(consumed, "a never-stopping sink consumes every chunk");
    }
    (tags, tokenizer.is_idle())
}

#[test]
fn bulk_equals_scalar_over_random_documents_and_all_chunk_splits() {
    let mut rng = Rng(0xDEC0DE);
    for round in 0..48 {
        let mut doc = Vec::new();
        for _ in 0..(4 + rng.below(24)) {
            push_fragment(&mut doc, &mut rng);
        }
        let whole = scan(&doc, 0, false);
        assert_eq!(
            whole,
            scan(&doc, 0, true),
            "round {round}: whole-input scan disagrees on {:?}",
            String::from_utf8_lossy(&doc)
        );
        for chunk in 1..=doc.len() {
            let bulk = scan(&doc, chunk, false);
            assert_eq!(
                bulk,
                whole,
                "round {round} chunk {chunk}: bulk chunked != whole on {:?}",
                String::from_utf8_lossy(&doc)
            );
            assert_eq!(
                bulk,
                scan(&doc, chunk, true),
                "round {round} chunk {chunk}: bulk != scalar on {:?}",
                String::from_utf8_lossy(&doc)
            );
        }
    }
}

#[test]
fn over_long_names_match_the_oracle_at_every_split() {
    // A name crossing MAX_NAME_LEN: both scanners must emit the same error
    // at the same point in the tag stream and recover identically.
    let mut doc = b"<ok/><".to_vec();
    doc.extend(std::iter::repeat_n(b'x', Tokenizer::MAX_NAME_LEN + 3));
    doc.extend_from_slice(b"><ok/>");
    let whole = scan(&doc, 0, false);
    assert_eq!(whole, scan(&doc, 0, true));
    assert_eq!(whole.0.len(), 3, "open, error, open: {:?}", whole.0);
    assert!(whole.0[1].starts_with('!'), "{:?}", whole.0);
    // Sampled splits (the full sweep over a 4 KiB document is quadratic);
    // primes make the boundaries land everywhere across the cap.
    for chunk in [1, 7, 97, 1021, 4093, Tokenizer::MAX_NAME_LEN] {
        assert_eq!(scan(&doc, chunk, false), whole, "chunk {chunk}");
        assert_eq!(scan(&doc, chunk, true), whole, "chunk {chunk}");
    }
}

#[test]
fn service_reports_over_long_names_as_a_limit_rejection() {
    let schema = SchemaBuilder::new()
        .element("doc", "(item)*")
        .element_empty("item")
        .build()
        .expect("schema compiles");
    let mut service = schema.service();
    let doc = service.open();
    let mut bytes = b"<doc><".to_vec();
    bytes.extend(std::iter::repeat_n(b'a', 2 * Tokenizer::MAX_NAME_LEN));
    bytes.extend_from_slice(b"></doc>");
    for chunk in bytes.chunks(997) {
        let _ = service.feed_bytes(doc, chunk);
    }
    let diagnostic = service.finish(doc).expect_err("hostile name is rejected");
    assert_eq!(diagnostic.code(), Code::NameLimitExceeded);
    assert!(
        diagnostic.message().contains("exceeds"),
        "{}",
        diagnostic.message()
    );
}
