//! Cross-oracle property tests for the bulk-scanning tokenizer.
//!
//! The tokenizer ships two scanners with identical semantics: the bulk
//! SWAR scanner (`Tokenizer::feed`, the production path) and the original
//! byte-at-a-time scanner (`Tokenizer::feed_scalar`, kept as the reference
//! oracle). This suite generates seeded random tag soup — well-formed tags,
//! attributes with hostile quoting, text runs, entity and character
//! references (valid and bogus), comments, CDATA sections, processing
//! instructions, doctypes with literals and internal subsets, malformed
//! markup, non-UTF-8 bytes, and names around the length cap — and checks
//! that bulk == scalar, **token for token**, under *every* chunk split of
//! every document, and that every chunking agrees with the whole-input scan
//! once consecutive text segments are concatenated (segment boundaries move
//! with the chunking; their concatenation must not). Chunk boundaries are
//! the hard part of the bulk scanner (the borrow-from-chunk fast path must
//! fall back to the side buffers exactly when a construct straddles a
//! boundary), so the sweep is exhaustive rather than sampled.

use redet::schema::tokenizer::{Tag, Tokenizer};
use redet::SchemaBuilder;
use redet_core::Code;

/// A tiny deterministic RNG (splitmix-style) so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.below(items.len())]
    }
}

/// Appends one random document fragment: anything the tokenizer's grammar
/// knows about, including constructs it must *reject* identically.
fn push_fragment(doc: &mut Vec<u8>, rng: &mut Rng) {
    const NAMES: &[&str] = &["a", "doc", "item-x", "ns:tag", "日本語", "_u"];
    const TEXT: &[&str] = &["", "text", " >>] ?-- ", "a & b", "\n\t "];
    match rng.below(18) {
        0 | 1 => {
            // Start tag, possibly with attributes and tricky quotes.
            doc.push(b'<');
            doc.extend_from_slice(rng.pick(NAMES).as_bytes());
            for _ in 0..rng.below(3) {
                let quote = if rng.below(2) == 0 { b'\'' } else { b'"' };
                const VALUES: &[&[u8]] = &[b"v", b">", b"/>", b"<", b"'\"", b"&amp;v", b"&x;"];
                doc.extend_from_slice(b" attr=");
                doc.push(quote);
                doc.extend_from_slice(rng.pick(VALUES));
                doc.push(quote);
            }
            if rng.below(3) == 0 {
                doc.push(b'/');
            }
            doc.push(b'>');
        }
        2 | 3 => {
            // End tag, sometimes with trailing whitespace.
            doc.extend_from_slice(b"</");
            doc.extend_from_slice(rng.pick(NAMES).as_bytes());
            if rng.below(3) == 0 {
                doc.push(b' ');
            }
            doc.push(b'>');
        }
        4 | 5 => doc.extend_from_slice(rng.pick(TEXT).as_bytes()),
        6 => {
            // Comment with embedded dashes and '>'s.
            const BODIES: &[&[u8]] = &[b" c ", b"-", b"--", b"->", b">", b"- >"];
            doc.extend_from_slice(b"<!--");
            doc.extend_from_slice(rng.pick(BODIES));
            doc.extend_from_slice(b"-->");
        }
        7 => {
            // CDATA with embedded ']'s and fake terminators.
            const BODIES: &[&[u8]] = &[b"<tag>", b"]", b"]]", b"] ]>", b">"];
            doc.extend_from_slice(b"<![CDATA[");
            doc.extend_from_slice(rng.pick(BODIES));
            doc.extend_from_slice(b"]]>");
        }
        8 => {
            // Processing instruction with embedded '?'s.
            const BODIES: &[&[u8]] = &[b"data", b"?", b"? >", b">"];
            doc.extend_from_slice(b"<?pi ");
            doc.extend_from_slice(rng.pick(BODIES));
            doc.extend_from_slice(b"?>");
        }
        9 => {
            // Doctype-ish constructs: literals may contain '>' and
            // brackets; internal subsets nest.
            const DOCTYPES: &[&[u8]] = &[
                b"<!DOCTYPE d>",
                b"<!DOCTYPE d SYSTEM 'x>y[z]'>",
                b"<!DOCTYPE d [ <!ENTITY e \">]\"> ]>",
                b"<![INCLUDE[ <x> ]]>",
                b"<!>",
            ];
            doc.extend_from_slice(rng.pick(DOCTYPES));
        }
        10 => {
            // Malformed markup the scanners must reject identically.
            const BROKEN: &[&[u8]] = &[
                b"<>", b"</>", b"</ >", b"< x>", b"<a=b>", b"</a b>", b"<a <b>", b"<a x <",
            ];
            doc.extend_from_slice(rng.pick(BROKEN));
        }
        11 => {
            // Hostile bytes: non-UTF-8 names, NULs, high bytes.
            const HOSTILE: &[&[u8]] = &[b"<\xFF\xFE>", b"<a\x80b>", b"\x00\x80\xFF", b"</\xC3(>"];
            doc.extend_from_slice(rng.pick(HOSTILE));
        }
        12 => {
            // Names around the cap boundary (exercised cheaply here; the
            // dedicated cap test covers the far side).
            let len = [1, 2, 63, 64, 65][rng.below(5)];
            doc.push(b'<');
            doc.extend(std::iter::repeat(b'n').take(len));
            doc.push(b'>');
        }
        13 => {
            // Entity and character references: the five predefined ones,
            // numeric forms, and bogus ones both scanners must reject at
            // the same byte.
            const REFS: &[&[u8]] = &[
                b"&amp;",
                b"&lt;",
                b"&gt;",
                b"&quot;",
                b"&apos;",
                b"&#65;",
                b"&#x2013;",
                b"&bogus;",
                b"&#xZZ;",
                b"&#1114112;",
                b"& ",
                b"&unterminated",
            ];
            doc.extend_from_slice(b"pre");
            doc.extend_from_slice(rng.pick(REFS));
            doc.extend_from_slice(b"post");
        }
        14 => {
            // Attribute spacing forms: valueless attributes, whitespace
            // around '=', and the unquoted-value rejection.
            const TAGS: &[&[u8]] = &[
                b"<a checked>",
                b"<a checked disabled/>",
                b"<a x = 'v'>",
                b"<a x\n=\n\"v\" y>",
                b"<a x=v>",
                b"<a / >",
            ];
            doc.extend_from_slice(rng.pick(TAGS));
        }
        _ => {
            // Nested well-formed runs keep some structure in the soup.
            doc.extend_from_slice(b"<r>t<s a='1'/>u</r>");
        }
    }
}

/// Owned rendering of a tag event, so streams can be compared across feeds.
fn render(tag: Tag<'_>) -> String {
    match tag {
        Tag::Open(n) => format!("<{}>", String::from_utf8_lossy(n)),
        Tag::Attr { name, value } => format!(
            " {}='{}'",
            String::from_utf8_lossy(name),
            String::from_utf8_lossy(value)
        ),
        Tag::SelfClose => "/>".to_owned(),
        Tag::Close(n) => format!("</{}>", String::from_utf8_lossy(n)),
        Tag::Text(t) => format!("'{}'", String::from_utf8_lossy(t)),
        Tag::Error(e) => format!("!{e}"),
    }
}

/// Merges consecutive `Text` renderings: segment boundaries move with the
/// chunking, their concatenation does not.
fn normalize(events: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for e in events {
        if e.starts_with('\'') && e.ends_with('\'') && e.len() >= 2 {
            if let Some(last) = out.last_mut() {
                if last.starts_with('\'') && last.ends_with('\'') {
                    let inner = &e[1..e.len() - 1];
                    last.truncate(last.len() - 1);
                    last.push_str(inner);
                    last.push('\'');
                    continue;
                }
            }
        }
        out.push(e.clone());
    }
    out
}

/// Scans `doc` split into `chunk`-byte pieces (0 = whole input) with the
/// chosen scanner, returning the rendered tag stream and final idleness.
fn scan(doc: &[u8], chunk: usize, scalar: bool) -> (Vec<String>, bool) {
    let mut tokenizer = Tokenizer::default();
    let mut tags = Vec::new();
    let mut sink = |tag: Tag<'_>| {
        tags.push(render(tag));
        true
    };
    let pieces: Vec<&[u8]> = if chunk == 0 {
        vec![doc]
    } else {
        doc.chunks(chunk).collect()
    };
    for piece in pieces {
        let consumed = if scalar {
            tokenizer.feed_scalar(piece, &mut sink)
        } else {
            tokenizer.feed(piece, &mut sink)
        };
        assert!(consumed, "a never-stopping sink consumes every chunk");
    }
    (tags, tokenizer.is_idle())
}

#[test]
fn bulk_equals_scalar_over_random_documents_and_all_chunk_splits() {
    let mut rng = Rng(0xDEC0DE);
    for round in 0..48 {
        let mut doc = Vec::new();
        for _ in 0..(4 + rng.below(24)) {
            push_fragment(&mut doc, &mut rng);
        }
        let whole = scan(&doc, 0, false);
        assert_eq!(
            whole,
            scan(&doc, 0, true),
            "round {round}: whole-input scan disagrees on {:?}",
            String::from_utf8_lossy(&doc)
        );
        let whole_norm = (normalize(&whole.0), whole.1);
        for chunk in 1..=doc.len() {
            let bulk = scan(&doc, chunk, false);
            // Bulk == scalar is exact, segment for segment, at the same
            // chunking.
            assert_eq!(
                bulk,
                scan(&doc, chunk, true),
                "round {round} chunk {chunk}: bulk != scalar on {:?}",
                String::from_utf8_lossy(&doc)
            );
            // Across chunkings only text segmentation may move.
            assert_eq!(
                (normalize(&bulk.0), bulk.1),
                whole_norm,
                "round {round} chunk {chunk}: bulk chunked != whole on {:?}",
                String::from_utf8_lossy(&doc)
            );
        }
    }
}

#[test]
fn full_markup_documents_survive_every_split() {
    // One handcrafted document touching every event kind: attributes with
    // entities in values, coalesced text with predefined and character
    // references, CDATA content, self-closing tags.
    let doc = "<doc lang='en' checked><title>G &amp; S &#x2013; vol. 1</title>\
               <note to=\"a&lt;b\"/><![CDATA[raw <markup> here]]>tail</doc>";
    let want = [
        "<doc>",
        " lang='en'",
        " checked=''",
        "<title>",
        "'G & S \u{2013} vol. 1'",
        "</title>",
        "<note>",
        " to='a<b'",
        "/>",
        "'raw <markup> heretail'",
        "</doc>",
    ];
    let whole = scan(doc.as_bytes(), 0, false);
    assert!(whole.1, "scanner should end idle");
    assert_eq!(normalize(&whole.0), want);
    for chunk in 1..doc.len() {
        let bulk = scan(doc.as_bytes(), chunk, false);
        assert_eq!(bulk, scan(doc.as_bytes(), chunk, true), "chunk {chunk}");
        assert_eq!(normalize(&bulk.0), want, "chunk {chunk}");
    }
}

#[test]
fn over_long_names_match_the_oracle_at_every_split() {
    // A name crossing MAX_NAME_LEN: both scanners must emit the same error
    // at the same point in the tag stream and recover identically.
    let mut doc = b"<ok/><".to_vec();
    doc.extend(std::iter::repeat_n(b'x', Tokenizer::MAX_NAME_LEN + 3));
    doc.extend_from_slice(b"><ok/>");
    let whole = scan(&doc, 0, false);
    assert_eq!(whole, scan(&doc, 0, true));
    // <ok> /> !error 'xx>' <ok> /> — the bytes past the error point are
    // visible text, identical in both scanners.
    assert_eq!(whole.0.len(), 6, "{:?}", whole.0);
    assert!(whole.0[2].starts_with('!'), "{:?}", whole.0);
    assert_eq!(whole.0[3], "'xx>'", "{:?}", whole.0);
    let whole_norm = (normalize(&whole.0), whole.1);
    // Sampled splits (the full sweep over a 4 KiB document is quadratic);
    // primes make the boundaries land everywhere across the cap.
    for chunk in [1, 7, 97, 1021, 4093, Tokenizer::MAX_NAME_LEN] {
        let bulk = scan(&doc, chunk, false);
        assert_eq!(bulk, scan(&doc, chunk, true), "chunk {chunk}");
        assert_eq!((normalize(&bulk.0), bulk.1), whole_norm, "chunk {chunk}");
    }
}

#[test]
fn service_reports_over_long_names_as_a_limit_rejection() {
    let schema = SchemaBuilder::new()
        .element("doc", "(item)*")
        .element_empty("item")
        .build()
        .expect("schema compiles");
    let mut service = schema.service();
    let doc = service.open();
    let mut bytes = b"<doc><".to_vec();
    bytes.extend(std::iter::repeat_n(b'a', 2 * Tokenizer::MAX_NAME_LEN));
    bytes.extend_from_slice(b"></doc>");
    for chunk in bytes.chunks(997) {
        let _ = service.feed_bytes(doc, chunk);
    }
    let diagnostic = service.finish(doc).expect_err("hostile name is rejected");
    assert_eq!(diagnostic.code(), Code::NameLimitExceeded);
    assert!(
        diagnostic.message().contains("exceeds"),
        "{}",
        diagnostic.message()
    );
}
