//! Workspace-level cross-validation: the linear-time algorithms must agree
//! with the Glushkov baselines on randomly generated expressions and words.
//!
//! These are property-style tests driven by a seeded deterministic
//! generator (`redet_workloads::random_expression`) instead of an external
//! property-testing framework: every case is reproducible from its seed,
//! and failures print the offending expression.

use redet::core::matcher::pathdecomp::PathDecompositionMatcher;
use redet::core::matcher::starfree::StarFreeMatcher;
use redet::{
    check_determinism, ColoredAncestorMatcher, GlushkovAutomaton, GlushkovDfaMatcher,
    KOccurrenceMatcher, Matcher, PositionMatcher, TreeAnalysis,
};
use redet_automata::glushkov_determinism;
use redet_syntax::{normalize, Regex, Symbol};
use redet_workloads as workloads;
use redet_workloads::rng::StdRng;
use std::sync::Arc;

const CASES: u64 = 256;

/// One random (often non-deterministic) expression over a small alphabet,
/// together with a mixed bag of member and random words.
fn random_workload(case: u64) -> (Regex, Vec<Vec<Symbol>>) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ case);
    let positions = rng.gen_range(1usize..14);
    let sigma = rng.gen_range(1usize..4);
    let seed = rng.next_u64();
    let workload = workloads::random_expression(positions, sigma, seed);
    let regex = normalize(workload.regex).expect("random expressions normalize");
    let mut words = Vec::new();
    for s in 0..6u64 {
        words.push(workloads::sample_member_word(&regex, 12, seed ^ (s * 7919)));
        words.push(workloads::sample_random_word(
            &workload.alphabet,
            (seed as usize + s as usize) % 9,
            seed.wrapping_add(s),
        ));
    }
    (regex, words)
}

/// Theorem 3.5 cross-check: the linear-time determinism test agrees with
/// the Glushkov-automaton baseline on arbitrary expressions.
#[test]
fn determinism_test_agrees_with_glushkov() {
    for case in 0..CASES {
        let (regex, _) = random_workload(case);
        if regex.has_counting() {
            continue;
        }
        let analysis = TreeAnalysis::build(&regex);
        let linear = check_determinism(&analysis).is_ok();
        let baseline = glushkov_determinism(&GlushkovAutomaton::build(&regex)).is_ok();
        assert_eq!(linear, baseline, "case {case}: disagreement on {regex:?}");
    }
}

/// Theorems 4.2, 4.3, 4.10, 4.12: every matcher accepts exactly the same
/// words as the Glushkov DFA on deterministic expressions.
#[test]
fn matchers_agree_with_dfa() {
    for case in 0..CASES {
        let (regex, words) = random_workload(case);
        if regex.has_counting() {
            continue;
        }
        let Ok(dfa) = GlushkovDfaMatcher::build(&regex) else {
            // Non-deterministic: out of scope for the deterministic matchers.
            continue;
        };
        let analysis = Arc::new(TreeAnalysis::build(&regex));
        let certificate =
            Arc::new(check_determinism(&analysis).expect("DFA build implies determinism"));

        let kocc = PositionMatcher::new(KOccurrenceMatcher::new(analysis.clone()));
        let colored =
            PositionMatcher::new(ColoredAncestorMatcher::new(analysis.clone(), certificate));
        let pathdecomp = PathDecompositionMatcher::new(analysis.clone())
            .ok()
            .map(PositionMatcher::new);
        let starfree = StarFreeMatcher::new(analysis.clone())
            .ok()
            .map(PositionMatcher::new);

        for word in &words {
            let expected = dfa.matches(word);
            assert_eq!(
                kocc.matches(word),
                expected,
                "case {case}: k-occurrence on {regex:?} / {word:?}"
            );
            assert_eq!(
                colored.matches(word),
                expected,
                "case {case}: colored on {regex:?} / {word:?}"
            );
            if let Some(m) = &pathdecomp {
                assert_eq!(
                    m.matches(word),
                    expected,
                    "case {case}: path decomposition on {regex:?} / {word:?}"
                );
            }
            if let Some(m) = &starfree {
                assert_eq!(
                    m.matches(word),
                    expected,
                    "case {case}: star-free on {regex:?} / {word:?}"
                );
            }
        }

        // The star-free batch interface agrees with per-word matching.
        if let Some(m) = &starfree {
            let batch = m.sim().match_words(&words);
            let individual: Vec<bool> = words.iter().map(|w| dfa.matches(w)).collect();
            assert_eq!(
                batch, individual,
                "case {case}: batch star-free on {regex:?}"
            );
        }
    }
}

/// `checkIfFollow` (Theorem 2.4) agrees with the Glushkov follow lists on
/// arbitrary expressions, deterministic or not.
#[test]
fn check_if_follow_agrees_with_glushkov() {
    for case in 0..CASES {
        let (regex, _) = random_workload(case);
        let analysis = TreeAnalysis::build(&regex);
        let automaton = GlushkovAutomaton::build(&regex);
        let m = analysis.tree().num_positions();
        for p in 0..m {
            for q in 0..m {
                let p = redet::tree::PosId::from_index(p);
                let q = redet::tree::PosId::from_index(q);
                assert_eq!(
                    analysis.check_if_follow(p, q),
                    automaton.follow(p).binary_search(&q).is_ok(),
                    "case {case}: follow({p:?},{q:?}) on {regex:?}"
                );
            }
        }
    }
}

/// Deterministic workload families are accepted by the linear test and by
/// the baseline, and their structural statistics are as advertised.
#[test]
fn workload_families_are_deterministic() {
    let families: Vec<(&str, Regex)> = vec![
        ("mixed content", workloads::mixed_content(128).regex),
        ("CHARE", workloads::chare(40, 5, 3).regex),
        (
            "star-free CHARE",
            workloads::star_free_chare(40, 5, 4).regex,
        ),
        ("4-occurrence", workloads::k_occurrence(4, 6, 3, 5).regex),
        ("deep alternation", workloads::deep_alternation(8, 6).regex),
    ];
    for (name, regex) in families {
        let analysis = TreeAnalysis::build(&regex);
        assert!(
            check_determinism(&analysis).is_ok(),
            "{name} should be deterministic"
        );
        assert!(
            glushkov_determinism(&GlushkovAutomaton::build(&regex)).is_ok(),
            "{name} baseline"
        );
    }
}

/// The facade gives the same verdicts as driving the pieces by hand, for all
/// strategies, on the full deterministic family sweep — and strategy
/// switching shares one compilation artifact.
#[test]
fn facade_strategies_agree_on_workloads() {
    use redet::{DeterministicRegex, MatchStrategy};
    let workload = workloads::chare(15, 3, 9);
    let printed = redet::syntax::printer::to_string(&workload.regex, &workload.alphabet);
    let reference = DeterministicRegex::compile_with(&printed, MatchStrategy::GlushkovDfa).unwrap();
    let words: Vec<Vec<Symbol>> = (0..40)
        .map(|seed| workloads::sample_member_word(&workload.regex, 20, seed))
        .chain((0..40).map(|seed| workloads::sample_random_word(&workload.alphabet, 10, seed)))
        .collect();
    for strategy in [
        MatchStrategy::Auto,
        MatchStrategy::KOccurrence,
        MatchStrategy::PathDecomposition,
        MatchStrategy::ColoredAncestor,
    ] {
        // Strategy switching stays on the reference's compilation artifact.
        let model = reference.with_strategy(strategy).unwrap();
        assert!(Arc::ptr_eq(model.compiled(), reference.compiled()));
        for word in &words {
            assert_eq!(
                model.matches_symbols(word),
                reference.matches_symbols(word),
                "{strategy:?} on {word:?}"
            );
        }
    }
}
