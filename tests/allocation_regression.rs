//! Zero-allocation regression tests for the steady-state match loops.
//!
//! Compile-once/match-many (experiment E10) promises that after warm-up the
//! hot loops perform **no allocation**: the batch matcher runs on the
//! reusable [`BatchScratch`] arenas, the single-word transition simulations
//! carry their state in a `PosId`, the counted-expression simulation
//! reuses caller-owned cursor buffers, and the schema-level
//! [`DocumentValidator`] recycles its frame stack and session scratch pool
//! across documents. A counting global allocator enforces this — any `Vec`
//! growth or hash-map insertion sneaking back into the hot paths fails the
//! test.
//!
//! Everything runs inside one `#[test]` so no concurrent test thread can
//! pollute the counter.

use redet::core::matcher::starfree::BatchScratch;
use redet::schema::{DocEvent, FeedStatus, ServiceLimits, ValidatorPool};
use redet::{
    CompiledAnalysis, DocumentValidator, KOccurrenceMatcher, Matcher, PositionMatcher,
    SchemaBuilder, StarFreeMatcher, Symbol,
};
use redet_alloc_counter::{allocations_during, thread_allocations_during, CountingAllocator};
use redet_automata::{unroll_counting, NfaScratch, NfaSimulationMatcher};
use redet_workloads as workloads;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Replays a pre-interned event stream into the validator — the hash-free
/// hot path, without the `finish()` reset.
fn replay(validator: &mut DocumentValidator, events: &[DocEvent]) {
    for event in events {
        match event {
            DocEvent::Open(sym) => validator.start_element_symbol(*sym),
            DocEvent::Close => validator.end_element(),
            _ => unreachable!("the test emits only open/close events"),
        }
    }
}

#[test]
fn steady_state_match_loops_do_not_allocate() {
    // --- Batch star-free matching over the dynamic LCA-closed skeleta. ---
    let w = workloads::star_free_chare(60, 4, 17);
    let compiled =
        CompiledAnalysis::from_regex(w.regex.clone(), w.alphabet.clone()).expect("deterministic");
    let starfree = StarFreeMatcher::from_compiled(&compiled).expect("star-free");
    let words: Vec<Vec<Symbol>> = (0..200)
        .map(|i| {
            if i % 2 == 0 {
                workloads::sample_member_word(&w.regex, 40, i as u64)
            } else {
                workloads::sample_random_word(&w.alphabet, 25, i as u64)
            }
        })
        .collect();
    let mut scratch = BatchScratch::new();
    let mut results = Vec::new();
    // Warm-up sizes the arenas; the steady-state call must not allocate.
    starfree.match_words_with(&words, &mut scratch, &mut results);
    starfree.match_words_with(&words, &mut scratch, &mut results);
    let (allocations, accepted) = allocations_during(|| {
        starfree.match_words_with(&words, &mut scratch, &mut results);
        results.iter().filter(|&&x| x).count()
    });
    assert!(accepted > 0, "sanity: some words match");
    assert_eq!(
        allocations, 0,
        "batch star-free matching allocated in steady state"
    );

    // --- Single-word transition simulation (k-occurrence), session-fed. ---
    let kocc = PositionMatcher::new(KOccurrenceMatcher::from_compiled(&compiled));
    let word = workloads::sample_member_word(&w.regex, 200, 99);
    assert!(kocc.matches(&word));
    let (allocations, _) = allocations_during(|| kocc.matches(&word));
    assert_eq!(allocations, 0, "k-occurrence matching allocated per word");

    // --- Counted-expression simulation with reusable cursor buffers. ---
    let (counted, sigma) = redet::parse("(a b){2,4} c").unwrap();
    let nfa = NfaSimulationMatcher::build(&unroll_counting(&counted));
    let mut nfa_scratch = NfaScratch::new();
    let member: Vec<Symbol> = ["a", "b", "a", "b", "c"]
        .iter()
        .map(|s| sigma.lookup(s).unwrap())
        .collect();
    assert!(nfa.matches_with(&member, &mut nfa_scratch));
    let (allocations, accepted) =
        allocations_during(|| nfa.matches_with(&member, &mut nfa_scratch));
    assert!(accepted);
    assert_eq!(
        allocations, 0,
        "NFA simulation allocated despite the reusable scratch"
    );

    // --- Event-driven document validation over a 20+-element schema. ---
    let schema = SchemaBuilder::new()
        .parse_dtd(workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");
    assert!(schema.len() >= 20, "acceptance scale: ≥ 20 declarations");
    let s = |name: &str| schema.lookup(name).expect(name);
    let (book, front, body, back) = (s("book"), s("front"), s("body"), s("back"));
    let (title, author, chapter, section) = (s("title"), s("author"), s("chapter"), s("section"));
    let (para, index, entry, term, locator) =
        (s("para"), s("index"), s("entry"), s("term"), s("locator"));

    // A deep document: a chapter whose sections nest 120 levels deep
    // (recursive `section` model), plus a counted element (`entry` uses
    // `locator{1,4}`, validated by the NFA simulation via the scratch pool).
    let mut events: Vec<DocEvent> = Vec::new();
    let open = |events: &mut Vec<DocEvent>, sym: Symbol| events.push(DocEvent::Open(sym));
    let close = |events: &mut Vec<DocEvent>| events.push(DocEvent::Close);
    let leaf = |events: &mut Vec<DocEvent>, sym: Symbol| {
        events.push(DocEvent::Open(sym));
        events.push(DocEvent::Close);
    };
    open(&mut events, book);
    open(&mut events, front);
    leaf(&mut events, title);
    leaf(&mut events, author);
    close(&mut events); // </front>
    open(&mut events, body);
    open(&mut events, chapter);
    leaf(&mut events, title);
    let depth = 120;
    for _ in 0..depth {
        open(&mut events, section);
        leaf(&mut events, title);
        leaf(&mut events, para);
    }
    for _ in 0..depth {
        close(&mut events); // </section>
    }
    close(&mut events); // </chapter>
    close(&mut events); // </body>
    open(&mut events, back);
    open(&mut events, index);
    open(&mut events, entry);
    leaf(&mut events, term);
    leaf(&mut events, locator);
    leaf(&mut events, locator);
    close(&mut events); // </entry>
    close(&mut events); // </index>
    close(&mut events); // </back>
    close(&mut events); // </book>

    let mut validator = schema.validator();
    // The first document warms the frame stack and the scratch pool; the
    // second confirms the warmed state; the third is measured.
    replay(&mut validator, &events);
    validator.finish().expect("the deep document is valid");
    replay(&mut validator, &events);
    validator.finish().expect("the deep document is valid");
    let (allocations, ok) = allocations_during(|| {
        replay(&mut validator, &events);
        validator.finish().is_ok()
    });
    assert!(ok, "sanity: the measured document is valid");
    assert_eq!(
        allocations, 0,
        "document validation allocated in steady state"
    );

    // --- Sharded batch validation: zero allocation per worker. ---
    // The pool's workers are `ValidationService`s running `validate_events`
    // (open → feed → finish) over their shard; after one warming batch each
    // worker's loop must be allocation-free. Thread spawning itself
    // allocates (per batch, O(workers)), so the steady state is asserted
    // with the *per-thread* counter inside each worker — exactly the loop
    // `ValidatorPool::validate_batch` runs.
    let documents: Vec<Vec<DocEvent>> = (0..8).map(|_| events.clone()).collect();
    let mut pool = ValidatorPool::new(schema.clone(), 4);
    let warm = pool.validate_batch(&documents);
    assert!(
        warm.iter().all(Result::is_ok),
        "sanity: documents are valid"
    );
    let shard = documents.len() / 4;
    std::thread::scope(|scope| {
        for chunk in documents.chunks(shard) {
            let mut worker = schema.service();
            scope.spawn(move || {
                // Two warming passes size the worker's frame stack and
                // counted-state pool; the third is measured on this thread.
                for _ in 0..2 {
                    for doc in chunk {
                        worker.validate_events(doc).expect("valid document");
                    }
                }
                let (allocations, ok) = thread_allocations_during(|| {
                    chunk.iter().all(|doc| worker.validate_events(doc).is_ok())
                });
                assert!(ok, "sanity: the measured shard is valid");
                assert_eq!(allocations, 0, "batch worker allocated in steady state");
            });
        }
    });

    // --- Connection-oriented service: zero allocation per feed. ---
    // Interleaved chunked feeding across 8 resumable handles (event chunks
    // and 7-byte raw chunks) recycles everything through the service's
    // slab: after one warming round, open → feed* → finish allocates
    // nothing for valid documents.
    let mut service = schema.service();
    // Serialize the deep document to tag soup for the byte path.
    let xml = redet_bench::events_to_xml(&schema, &events);
    let interleaved_round = |service: &mut redet::ValidationService| {
        let handles: [redet::DocId; 8] = std::array::from_fn(|_| service.open());
        for chunk_start in (0..events.len()).step_by(16) {
            let chunk = &events[chunk_start..(chunk_start + 16).min(events.len())];
            for &h in &handles {
                let _ = service.feed(h, chunk);
            }
        }
        let mut ok = true;
        for h in handles {
            ok &= service.finish(h).is_ok();
        }
        // One byte-fed document in 7-byte chunks rides along.
        let doc = service.open();
        for chunk in xml.as_bytes().chunks(7) {
            let _ = service.feed_bytes(doc, chunk);
        }
        ok && service.finish(doc).is_ok()
    };
    // Two warming rounds size the slab, the spare validators and the
    // tokenizer's name buffer; the third is measured.
    assert!(interleaved_round(&mut service), "documents are valid");
    assert!(interleaved_round(&mut service), "documents are valid");
    let (allocations, ok) = allocations_during(|| interleaved_round(&mut service));
    assert!(ok, "sanity: the measured round is valid");
    assert_eq!(
        allocations, 0,
        "the validation service allocated in steady state"
    );

    // --- Borrow-from-chunk fast path: single-chunk byte documents. ---
    // When a whole document arrives in one chunk, the bulk tokenizer
    // borrows every tag name straight out of the chunk and never writes
    // its name buffer — so feeding warmed handles whole documents stays
    // allocation-free end to end.
    let single_chunk_round = |service: &mut redet::ValidationService| {
        let handles: [redet::DocId; 4] = std::array::from_fn(|_| service.open());
        let mut ok = true;
        for h in handles {
            let _ = service.feed_bytes(h, xml.as_bytes());
            ok &= service.finish(h).is_ok();
        }
        ok
    };
    assert!(single_chunk_round(&mut service), "documents are valid");
    let (allocations, ok) = allocations_during(|| single_chunk_round(&mut service));
    assert!(ok, "sanity: the measured round is valid");
    assert_eq!(
        allocations, 0,
        "single-chunk byte feeding allocated despite the borrow-from-chunk name path"
    );

    // --- Full markup: attribute- and text-heavy documents stay free. ---
    // Attribute checking runs on the epoch-stamped duplicate scratch sized
    // at construction, character data coalesces without buffering, and the
    // tokenizer's attribute/value/text buffers are recycled across
    // documents — so a warmed service validates full markup (entity
    // references included, split mid-reference by 5-byte chunks) without
    // allocating on any surface.
    let markup_events = redet_bench::book_markup_events(&schema, 3, 7);
    let markup_xml = redet_bench::events_to_xml(&schema, &markup_events);
    assert!(
        markup_events.iter().any(|e| matches!(e, DocEvent::Attr(_)))
            && markup_events.iter().any(|e| matches!(e, DocEvent::Text)),
        "sanity: the markup document carries attributes and character data"
    );
    let entity_xml = "<book lang=\"a&amp;b\" edition='&#50;'><front>\
         <title>G &amp; S &#x2013; vol. &#49;</title><author>A &lt; B</author>\
         </front><body><chapter><title>t</title><section><title>s</title>\
         <para>p &gt; q</para></section></chapter></body></book>";
    let markup_round = |service: &mut redet::ValidationService| {
        // The event surface in chunks…
        let doc = service.open();
        for chunk in markup_events.chunks(16) {
            let _ = service.feed(doc, chunk);
        }
        let mut ok = service.finish(doc).is_ok();
        // …the byte surface chunked and in one borrow-from-chunk pass…
        let doc = service.open();
        for chunk in markup_xml.as_bytes().chunks(7) {
            let _ = service.feed_bytes(doc, chunk);
        }
        ok &= service.finish(doc).is_ok();
        let doc = service.open();
        let _ = service.feed_bytes(doc, markup_xml.as_bytes());
        ok &= service.finish(doc).is_ok();
        // …and an entity-dense document split mid-reference.
        let doc = service.open();
        for chunk in entity_xml.as_bytes().chunks(5) {
            let _ = service.feed_bytes(doc, chunk);
        }
        ok && service.finish(doc).is_ok()
    };
    assert!(markup_round(&mut service), "markup documents are valid");
    assert!(markup_round(&mut service), "markup documents are valid");
    let (allocations, ok) = allocations_during(|| markup_round(&mut service));
    assert!(ok, "sanity: the measured markup round is valid");
    assert_eq!(
        allocations, 0,
        "attribute/text validation allocated in steady state"
    );

    // --- Resource governance: the checks themselves are free. ---
    // A fully governed service (every cap configured, sized so the valid
    // traffic passes) must stay allocation-free in steady state: the limit
    // bookkeeping on every feed, admission checks on every open, `tick`
    // sweeps that find nothing to sweep, and feeds against an
    // already-rejected handle (the fail-fast early-out) all run on the hot
    // path. Only a *violation* may allocate — it builds a diagnostic once,
    // on the cold path.
    let limits = ServiceLimits::default()
        .with_max_depth(256)
        .with_max_bytes(1 << 30)
        .with_max_events(1 << 24)
        .with_max_name_len(32)
        .with_max_in_flight(16)
        .with_idle_budget(1 << 20);
    let mut governed = schema.service_with_limits(limits);
    let governed_round = |service: &mut redet::ValidationService, now: u64| {
        let handles: [redet::DocId; 8] =
            std::array::from_fn(|_| service.try_open().expect("under the admission cap"));
        for chunk_start in (0..events.len()).step_by(16) {
            let chunk = &events[chunk_start..(chunk_start + 16).min(events.len())];
            for &h in &handles {
                let _ = service.feed(h, chunk);
            }
            // A mid-round sweep that finds nothing idle must cost nothing.
            service.tick(now);
        }
        let mut ok = true;
        for h in handles {
            ok &= service.finish(h).is_ok();
        }
        let doc = service.open();
        for chunk in xml.as_bytes().chunks(7) {
            let _ = service.feed_bytes(doc, chunk);
        }
        ok && service.finish(doc).is_ok()
    };
    assert!(governed_round(&mut governed, 1), "documents are valid");
    assert!(governed_round(&mut governed, 2), "documents are valid");
    let (allocations, ok) = allocations_during(|| governed_round(&mut governed, 3));
    assert!(ok, "sanity: the measured governed round is valid");
    assert_eq!(
        allocations, 0,
        "limit checks / no-op tick sweeps allocated in steady state"
    );

    // Rejected- and stale-handle feeds: building the rejection allocates
    // its diagnostic (cold path, outside the measurement); every feed
    // against it afterwards is a hot-path early-out and must be free.
    let rejected = governed.open();
    let bad = [DocEvent::Open(book), DocEvent::Open(back)]; // back before front
    assert_eq!(governed.feed(rejected, &bad), FeedStatus::Rejected);
    let stale = governed.open();
    governed.close(stale);
    let (allocations, _) = allocations_during(|| {
        for _ in 0..64 {
            assert_eq!(governed.feed(rejected, &events), FeedStatus::Rejected);
            assert_eq!(
                governed.feed_bytes(rejected, xml.as_bytes()),
                FeedStatus::Rejected
            );
            assert_eq!(governed.status(rejected), FeedStatus::Rejected);
            assert_eq!(governed.feed(stale, &events), FeedStatus::Stale);
            assert_eq!(governed.status(stale), FeedStatus::Stale);
        }
        governed.depth(rejected)
    });
    assert_eq!(
        allocations, 0,
        "rejected/stale-handle feeds allocated in steady state"
    );
    governed.close(rejected);
}
