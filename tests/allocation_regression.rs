//! Zero-allocation regression tests for the steady-state match loops.
//!
//! Compile-once/match-many (experiment E10) promises that after warm-up the
//! hot loops perform **no allocation**: the batch matcher runs on the
//! reusable [`BatchScratch`] arenas, the single-word transition simulations
//! carry their state in a `PosId`, and the counted-expression simulation
//! reuses caller-owned cursor buffers. A counting global allocator enforces
//! this — any `Vec` growth or hash-map insertion sneaking back into the hot
//! paths fails the test.
//!
//! Everything runs inside one `#[test]` so no concurrent test thread can
//! pollute the counter.

use redet::core::matcher::starfree::BatchScratch;
use redet::{
    CompiledAnalysis, KOccurrenceMatcher, Matcher, PositionMatcher, StarFreeMatcher, Symbol,
};
use redet_alloc_counter::{allocations_during, CountingAllocator};
use redet_automata::{unroll_counting, NfaScratch, NfaSimulationMatcher};
use redet_workloads as workloads;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_match_loops_do_not_allocate() {
    // --- Batch star-free matching over the dynamic LCA-closed skeleta. ---
    let w = workloads::star_free_chare(60, 4, 17);
    let compiled =
        CompiledAnalysis::from_regex(w.regex.clone(), w.alphabet.clone()).expect("deterministic");
    let starfree = StarFreeMatcher::from_compiled(&compiled).expect("star-free");
    let words: Vec<Vec<Symbol>> = (0..200)
        .map(|i| {
            if i % 2 == 0 {
                workloads::sample_member_word(&w.regex, 40, i as u64)
            } else {
                workloads::sample_random_word(&w.alphabet, 25, i as u64)
            }
        })
        .collect();
    let mut scratch = BatchScratch::new();
    let mut results = Vec::new();
    // Warm-up sizes the arenas; the steady-state call must not allocate.
    starfree.match_words_with(&words, &mut scratch, &mut results);
    starfree.match_words_with(&words, &mut scratch, &mut results);
    let (allocations, accepted) = allocations_during(|| {
        starfree.match_words_with(&words, &mut scratch, &mut results);
        results.iter().filter(|&&x| x).count()
    });
    assert!(accepted > 0, "sanity: some words match");
    assert_eq!(
        allocations, 0,
        "batch star-free matching allocated in steady state"
    );

    // --- Single-word transition simulation (k-occurrence). ---
    let kocc = PositionMatcher::new(KOccurrenceMatcher::from_compiled(&compiled));
    let word = workloads::sample_member_word(&w.regex, 200, 99);
    assert!(kocc.matches(&word));
    let (allocations, _) = allocations_during(|| kocc.matches(&word));
    assert_eq!(allocations, 0, "k-occurrence matching allocated per word");

    // --- Counted-expression simulation with reusable cursor buffers. ---
    let (counted, sigma) = redet::parse("(a b){2,4} c").unwrap();
    let nfa = NfaSimulationMatcher::build(&unroll_counting(&counted));
    let mut nfa_scratch = NfaScratch::new();
    let member: Vec<Symbol> = ["a", "b", "a", "b", "c"]
        .iter()
        .map(|s| sigma.lookup(s).unwrap())
        .collect();
    assert!(nfa.matches_with(&member, &mut nfa_scratch));
    let (allocations, accepted) =
        allocations_during(|| nfa.matches_with(&member, &mut nfa_scratch));
    assert!(accepted);
    assert_eq!(
        allocations, 0,
        "NFA simulation allocated despite the reusable scratch"
    );
}
