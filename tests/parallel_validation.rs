//! Concurrency equivalence suite for schema-level validation.
//!
//! A compiled [`Schema`] is immutable and `Send + Sync`; all validation
//! state lives in per-thread `DocumentValidator`s. These tests pin the
//! contract that parallel serving **changes nothing semantically**:
//!
//! * N threads validating a shuffled corpus against one shared
//!   `Arc<Schema>` produce diagnostics byte-identical to the
//!   single-threaded validator's, document by document;
//! * [`ValidatorPool::validate_batch`] — a thin client of the fail-fast
//!   `ValidationService` — returns the same verdicts in input order, for
//!   any worker count, each failed document carrying a diagnostic
//!   byte-identical to the *first* diagnostic the whole-document validator
//!   reports, and its warmed workers stay deterministic across repeated
//!   batches.
//!
//! The corpus mixes valid generated books with seeded corruptions (swapped
//! children, truncations, misplaced and unknown elements) so both the
//! accepting hot path and every diagnostic path run under contention.

use redet::{DocEvent, Schema, SchemaBuilder, ValidatorPool};
use redet_bench::book_document_events;
use redet_workloads::rng::StdRng;
use std::sync::Arc;

fn book_schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles")
}

/// Renders a validation outcome so equivalence means *byte-identical
/// diagnostics* (codes, messages, paths, event indices), not just matching
/// verdicts.
fn render(result: &Result<(), Vec<redet::Diagnostic>>) -> String {
    match result {
        Ok(()) => "ok".to_owned(),
        Err(diagnostics) => diagnostics
            .iter()
            .map(|d| format!("[{:?}] {d}", d.code()))
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

/// Renders a fail-fast (service/pool) outcome the same way, so it can be
/// compared against the *first* diagnostic of a whole-document run.
fn render_first(result: &Result<(), redet::Diagnostic>) -> String {
    match result {
        Ok(()) => "ok".to_owned(),
        Err(d) => format!("[{:?}] {d}", d.code()),
    }
}

/// A corpus of valid and seeded-corrupt documents.
fn corpus(schema: &Schema, documents: usize) -> Vec<Vec<DocEvent>> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    (0..documents)
        .map(|i| {
            let mut events = book_document_events(schema, 1 + i % 3, i as u64);
            match i % 5 {
                // Keep every 5th document valid.
                0 => {}
                // Swap two adjacent open events (children out of order).
                1 => {
                    let opens: Vec<usize> = (0..events.len() - 1)
                        .filter(|&j| {
                            matches!(events[j], DocEvent::Open(_))
                                && matches!(events[j + 1], DocEvent::Open(_))
                        })
                        .collect();
                    if let Some(&j) = opens.get(rng.gen_range(0..opens.len().max(1))) {
                        events.swap(j, j + 1);
                    }
                }
                // Truncate: unclosed elements.
                2 => {
                    let keep = rng.gen_range(events.len() / 2..events.len());
                    events.truncate(keep);
                }
                // Drop a close: unbalanced nesting further up.
                3 => {
                    let closes: Vec<usize> = (0..events.len())
                        .filter(|&j| events[j] == DocEvent::Close)
                        .collect();
                    let j = closes[rng.gen_range(0..closes.len())];
                    events.remove(j);
                }
                // Replace an element with a different one (misplaced child).
                _ => {
                    let opens: Vec<usize> = (0..events.len())
                        .filter(|&j| matches!(events[j], DocEvent::Open(_)))
                        .collect();
                    let j = opens[rng.gen_range(0..opens.len())];
                    let replacement = schema
                        .lookup(if i % 2 == 0 { "locator" } else { "chapter" })
                        .unwrap();
                    events[j] = DocEvent::Open(replacement);
                }
            }
            events
        })
        .collect()
}

#[test]
fn threads_produce_byte_identical_diagnostics() {
    let schema = book_schema();
    let documents = corpus(&schema, 40);

    // Single-threaded reference, in input order.
    let mut reference = schema.validator();
    let expected: Vec<String> = documents
        .iter()
        .map(|doc| render(&reference.validate_events(doc)))
        .collect();
    assert!(
        expected.iter().any(|r| r == "ok") && expected.iter().any(|r| r != "ok"),
        "sanity: the corpus mixes valid and invalid documents"
    );

    // N threads over a *shuffled* assignment of the same corpus, each with
    // its own validator from the shared Arc<Schema>, every validator
    // serving many documents back to back.
    let mut shuffled: Vec<usize> = (0..documents.len()).collect();
    let mut rng = StdRng::seed_from_u64(7);
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.gen_range(0..i + 1));
    }
    let threads = 4;
    let chunk = shuffled.len().div_ceil(threads);
    let results = std::sync::Mutex::new(vec![String::new(); documents.len()]);
    std::thread::scope(|scope| {
        for assignment in shuffled.chunks(chunk) {
            let mut validator = schema.validator();
            let (documents, results) = (&documents, &results);
            scope.spawn(move || {
                for &index in assignment {
                    let rendered = render(&validator.validate_events(&documents[index]));
                    results.lock().unwrap()[index] = rendered;
                }
            });
        }
    });
    let results = results.into_inner().unwrap();
    for (index, (got, want)) in results.iter().zip(&expected).enumerate() {
        assert_eq!(
            got, want,
            "document {index}: diagnostics differ across threads"
        );
    }
}

#[test]
fn pool_batches_equal_single_threaded_validation() {
    let schema = book_schema();
    let documents = corpus(&schema, 25);
    // The pool is a thin client of the fail-fast service: each failed
    // document carries the *first* diagnostic the whole-document validator
    // would report, byte for byte.
    let mut reference = schema.validator();
    let expected: Vec<String> = documents
        .iter()
        .map(|doc| match reference.validate_events(doc) {
            Ok(()) => "ok".to_owned(),
            Err(diagnostics) => format!("[{:?}] {}", diagnostics[0].code(), diagnostics[0]),
        })
        .collect();
    // And the single-threaded service agrees with that contract already.
    let mut service = schema.service();
    for (index, doc) in documents.iter().enumerate() {
        assert_eq!(
            render_first(&service.validate_events(doc)),
            expected[index],
            "service vs whole-document validator, document {index}"
        );
    }

    for workers in [1usize, 2, 3, 8] {
        let mut pool = ValidatorPool::new(Arc::clone(&schema), workers);
        // Two batches: the second runs on warmed workers.
        for round in 0..2 {
            let results = pool.validate_batch(&documents);
            assert_eq!(results.len(), documents.len());
            for (index, result) in results.iter().enumerate() {
                assert_eq!(
                    &render_first(result),
                    &expected[index],
                    "workers={workers} round={round} document {index}"
                );
            }
        }
    }

    // The one-shot convenience agrees too.
    let results = schema.validate_batch(&documents, 3);
    for (index, result) in results.iter().enumerate() {
        assert_eq!(
            &render_first(result),
            &expected[index],
            "one-shot document {index}"
        );
    }
}

#[test]
fn validators_move_across_threads_with_their_schema() {
    // The satellite regression: validators used to borrow the schema and
    // could not leave the thread (or even the stack frame) that owned it.
    let validator = {
        let schema = book_schema();
        schema.validator()
    }; // the schema Arc binding is gone; the validator keeps it alive
    let mut validator = validator;
    let handle = std::thread::spawn(move || {
        let schema = validator.schema();
        let doc = book_document_events(schema, 2, 99);
        let first = validator.validate_events(&doc).is_ok();
        (first, validator)
    });
    let (ok, mut validator) = handle.join().unwrap();
    assert!(ok, "generated documents are valid");
    // And back on the main thread, still warm and functional.
    let doc = book_document_events(validator.schema(), 1, 7);
    assert!(validator.validate_events(&doc).is_ok());
}
