//! Property tests for the dynamic LCA-closed skeleta (Theorem 4.12).
//!
//! The batch matcher is cross-validated three ways on every case:
//!
//! * against the **flat-list reference** (`match_words_flat`), the
//!   `O(|e| + k·Σ|wᵢ|)` formulation it replaced;
//! * against the **Glushkov DFA** matched word by word;
//! * against the matcher's own single-word transition simulation.
//!
//! Cases are seeded and deterministic: random star-free expressions over
//! small alphabets, the star-free CHARE workload family at several shapes,
//! and hand-picked adversarial expressions (deep unions — which exercise the
//! group-skip path of the skeleton — and long optional chains).

use redet::core::matcher::starfree::{BatchScratch, StarFreeMatcher};
use redet::{GlushkovDfaMatcher, Matcher, PositionMatcher, Symbol, TreeAnalysis};
use redet_syntax::normalize;
use redet_workloads as workloads;
use redet_workloads::rng::StdRng;
use std::sync::Arc;

/// Builds the batch matcher and DFA baseline for a workload, if the
/// expression is star-free and deterministic.
fn build(regex: &redet::Regex) -> Option<(StarFreeMatcher, GlushkovDfaMatcher)> {
    let dfa = GlushkovDfaMatcher::build(regex).ok()?;
    let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(regex))).ok()?;
    Some((matcher, dfa))
}

/// Mixed member / random / truncated words for a workload.
fn sample_words(w: &workloads::Workload, count: usize, seed: u64) -> Vec<Vec<Symbol>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words = Vec::with_capacity(count);
    for i in 0..count {
        let s = rng.next_u64();
        let mut word = match i % 3 {
            0 => workloads::sample_member_word(&w.regex, 3 + (s as usize % 40), s),
            1 => workloads::sample_random_word(&w.alphabet, s as usize % 12, s),
            _ => {
                let mut m = workloads::sample_member_word(&w.regex, 3 + (s as usize % 20), s);
                m.truncate(m.len() / 2); // prefixes exercise the parked tail
                m
            }
        };
        if rng.gen_bool(0.1) {
            word.clear(); // empty words take the nullability shortcut
        }
        words.push(word);
    }
    words
}

fn check_case(name: &str, w: &workloads::Workload, words: &[Vec<Symbol>]) {
    let Some((matcher, dfa)) = build(&w.regex) else {
        return;
    };
    let expected: Vec<bool> = words.iter().map(|word| dfa.matches(word)).collect();
    assert_eq!(
        matcher.match_words(words),
        expected,
        "{name}: skeleton vs DFA on {:?}",
        w.regex
    );
    assert_eq!(
        matcher.match_words_flat(words),
        expected,
        "{name}: flat reference vs DFA on {:?}",
        w.regex
    );
    let single = PositionMatcher::new(matcher);
    let individual: Vec<bool> = words.iter().map(|word| single.matches(word)).collect();
    assert_eq!(individual, expected, "{name}: single-word sweep vs DFA");
}

#[test]
fn random_star_free_expressions() {
    let mut tested = 0u32;
    for case in 0..4096u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ case);
        let positions = rng.gen_range(1usize..16);
        let sigma = rng.gen_range(1usize..5);
        let w = workloads::random_expression(positions, sigma, rng.next_u64());
        let Ok(regex) = normalize(w.regex.clone()) else {
            continue;
        };
        let workload = workloads::Workload {
            regex,
            alphabet: w.alphabet,
        };
        let words = sample_words(&workload, 24, case.wrapping_mul(0x9E3779B9));
        check_case("random", &workload, &words);
        if build(&workload.regex).is_some() {
            tested += 1;
        }
    }
    assert!(
        tested > 200,
        "too few star-free deterministic cases generated ({tested})"
    );
}

#[test]
fn star_free_chare_family() {
    for (factors, width, seed) in [
        (5, 2, 1u64),
        (20, 3, 2),
        (60, 4, 3),
        (120, 4, 31), // the E7 benchmark shape
        (200, 5, 5),
    ] {
        let w = workloads::star_free_chare(factors, width, seed);
        let words = sample_words(&w, 150, seed.wrapping_mul(7919));
        check_case("star_free_chare", &w, &words);
    }
}

#[test]
fn adversarial_shapes() {
    // Deep unions force parked entries under union branches (group skips),
    // shared suffixes force long pending lifetimes, and optional chains
    // maximize the candidate segments.
    let inputs = [
        "((a1 + (a2 + (a3 + (a4 + a5)))) + ((b1 + b2) + (b3 + b4))) z",
        "(a1? a2? a3? a4? a5? a6? a7? a8?) (b1 + b2) c?",
        "((x1 y1?) + (x2 y2?) + (x3 y3?)) (w1 + w2) ((u1 + u2) v?)",
        "(a + b) (a + b) (a + b) (a + b) (a + b)",
        "((((a b?) c?) d?) e?) f",
        "(k1 + k2 + k3)? (k4 + k5)? (k6 + k7)? (k8 + k9)? end",
    ];
    for input in inputs {
        let mut sigma = redet::Alphabet::new();
        let regex = redet_syntax::parse_with_alphabet(input, &mut sigma).unwrap();
        let w = workloads::Workload {
            regex,
            alphabet: sigma,
        };
        let words = sample_words(&w, 120, 0xADE5A);
        check_case(input, &w, &words);
    }
}

#[test]
fn scratch_reuse_across_heterogeneous_batches() {
    // One scratch driven across different expressions and batch sizes must
    // behave identically to fresh scratch state every time.
    let mut scratch = BatchScratch::new();
    let mut results = Vec::new();
    for seed in 0..8u64 {
        let w = workloads::star_free_chare(10 + seed as usize * 7, 3, seed);
        let Some((matcher, dfa)) = build(&w.regex) else {
            continue;
        };
        let words = sample_words(&w, 30 + (seed as usize * 13) % 50, seed);
        let expected: Vec<bool> = words.iter().map(|word| dfa.matches(word)).collect();
        matcher.match_words_with(&words, &mut scratch, &mut results);
        assert_eq!(results, expected, "seed {seed}");
    }
}
