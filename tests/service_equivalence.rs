//! Equivalence suite for the connection-oriented `ValidationService`.
//!
//! The service contract: however a document's event stream (or byte
//! stream) is chunked, and however many other in-flight documents its
//! chunks interleave with, the verdict — and for invalid documents the
//! retained diagnostic — is **byte-identical** to the *first* diagnostic a
//! whole-document [`DocumentValidator`] run over the same events reports.
//! These tests pin that contract:
//!
//! * every split point of a corpus document's event stream — attribute
//!   and character-data events included;
//! * every split point of its serialized byte stream (tag soup with
//!   attributes, entity references, comments, CDATA, PIs and text
//!   sprinkled in, so splits land mid-tag, mid-comment, mid-name,
//!   mid-entity…);
//! * random chunk interleavings across 64 concurrent handles, events and
//!   bytes mixed;
//! * rejected handles consume no further events (fail-fast).

use redet::schema::{FeedStatus, ServiceLimits};
use redet::{Code, DocEvent, DocumentValidator, Schema, SchemaBuilder};
use redet_bench::book_markup_events;
use redet_workloads::rng::StdRng;
use std::sync::Arc;

fn book_schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles")
}

/// The whole-document reference: run all events through one
/// `DocumentValidator` and render the *first* diagnostic (the fail-fast
/// service retains exactly that one).
fn whole_document(validator: &mut DocumentValidator, events: &[DocEvent]) -> String {
    match validator.validate_events(events) {
        Ok(()) => "ok".to_owned(),
        Err(diagnostics) => render(&diagnostics[0]),
    }
}

fn render(diagnostic: &redet::Diagnostic) -> String {
    format!("[{:?}] {diagnostic}", diagnostic.code())
}

fn render_result(result: &Result<(), redet::Diagnostic>) -> String {
    match result {
        Ok(()) => "ok".to_owned(),
        Err(d) => render(d),
    }
}

/// A corpus mixing valid full-markup books (attributes and character data
/// included) with seeded corruptions, so every diagnostic path — structural
/// *and* attribute/text — crosses chunk boundaries too.
fn corpus(schema: &Schema, documents: usize) -> Vec<Vec<DocEvent>> {
    let mut rng = StdRng::seed_from_u64(0x5EAF00D);
    let open_of = |events: &[DocEvent], name: &str| {
        let sym = schema.lookup(name).unwrap();
        events
            .iter()
            .position(|e| matches!(e, DocEvent::Open(s) if *s == sym))
            .expect("every book carries this element")
    };
    (0..documents)
        .map(|i| {
            let mut events = book_markup_events(schema, 1 + i % 2, i as u64);
            match i % 8 {
                0 => {} // valid
                1 => {
                    // Children out of order.
                    let opens: Vec<usize> = (0..events.len() - 1)
                        .filter(|&j| {
                            matches!(events[j], DocEvent::Open(_))
                                && matches!(events[j + 1], DocEvent::Open(_))
                        })
                        .collect();
                    if let Some(&j) = opens.get(rng.gen_range(0..opens.len().max(1))) {
                        events.swap(j, j + 1);
                    }
                }
                2 => {
                    // Truncated: unclosed elements at finish.
                    let keep = rng.gen_range(events.len() / 2..events.len());
                    events.truncate(keep);
                }
                3 => {
                    // A close too many somewhere in the middle — but never
                    // directly before an attribute event: an attribute
                    // after a close is expressible on the event surface but
                    // has no byte serialization.
                    let spots: Vec<usize> = (1..events.len())
                        .filter(|&j| !matches!(events[j], DocEvent::Attr(_)))
                        .collect();
                    let j = spots[rng.gen_range(0..spots.len())];
                    events.insert(j, DocEvent::Close);
                }
                4 => {
                    // Misplaced child.
                    let opens: Vec<usize> = (0..events.len())
                        .filter(|&j| matches!(events[j], DocEvent::Open(_)))
                        .collect();
                    let j = opens[rng.gen_range(0..opens.len())];
                    let replacement = schema
                        .lookup(if i % 2 == 0 { "locator" } else { "chapter" })
                        .unwrap();
                    events[j] = DocEvent::Open(replacement);
                }
                5 => {
                    // The same attribute twice on one start tag.
                    if let Some(j) = events.iter().position(|e| matches!(e, DocEvent::Attr(_))) {
                        let dup = events[j];
                        events.insert(j, dup);
                    }
                }
                6 => {
                    // Stray character data inside an element-only model.
                    let j = open_of(&events, "front");
                    events.insert(j + 1, DocEvent::Text);
                }
                _ => {
                    // An attribute declared on a different element: `page`
                    // belongs to `locator`, not `chapter`.
                    let j = open_of(&events, "chapter");
                    let page = schema.lookup("page").unwrap();
                    events.insert(j + 1, DocEvent::Attr(page));
                }
            }
            events
        })
        .collect()
}

/// Serializes an event stream to tag soup: self-closing leaves, attribute
/// values with `>`, `/` and entity references inside the quotes, character
/// data as plain text, entity-laden text or CDATA, plus comments, PIs and
/// whitespace-only noise sprinkled deterministically between tags. Every
/// construct either maps to exactly the events of the stream or to none at
/// all, so the byte path's verdict matches the event path's.
fn to_xml(schema: &Schema, events: &[DocEvent], seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("<?xml version=\"1.0\"?>");
    let mut open_names: Vec<&str> = Vec::new();
    // An open tag stays unterminated while its attribute events arrive.
    let mut pending = false;
    for event in events {
        match *event {
            DocEvent::Open(sym) => {
                if pending {
                    out.push('>');
                }
                let name = schema.name(sym);
                out.push('<');
                out.push_str(name);
                open_names.push(name);
                pending = true;
            }
            DocEvent::Attr(sym) => {
                assert!(pending, "corpus attributes always follow an open event");
                let name = schema.name(sym);
                match rng.gen_range(0..4u32) {
                    0 => out.push_str(&format!(" {name}=\"v-{name}\"")),
                    1 => out.push_str(&format!(" {name}='a&amp;b'")),
                    2 => out.push_str(&format!(" {name} = \"x/y>z\"")),
                    _ => out.push_str(&format!(" {name}=\"&#x2013;\"")),
                }
            }
            DocEvent::Text => {
                if pending {
                    out.push('>');
                    pending = false;
                }
                match rng.gen_range(0..3u32) {
                    0 => out.push_str("plain character data"),
                    1 => out.push_str("G &amp; S &#x2013; vol. 1"),
                    _ => out.push_str("<![CDATA[raw <markup> & bytes]]>"),
                }
            }
            DocEvent::Close => {
                // Unbalanced corpus documents may close with nothing open;
                // the tokenizer does not match names, so any name works —
                // the validator owns the balance diagnostic.
                let name = open_names.pop().unwrap_or("phantom");
                if pending {
                    pending = false;
                    if rng.gen_bool(0.5) {
                        out.push_str("/>");
                    } else {
                        out.push_str(&format!("></{name}>"));
                    }
                } else {
                    out.push_str(&format!("</{name}>"));
                }
            }
            _ => unreachable!("the corpus holds only the four event kinds"),
        }
        // Eventless noise — only outside a pending start tag.
        if !pending {
            match rng.gen_range(0..16u32) {
                0 => out.push_str("<!-- a comment > with -- noise -->"),
                1 => out.push_str("<![CDATA[ \n ]]>"),
                2 => out.push_str("<?pi keep going?>"),
                3 => out.push('\n'),
                _ => {}
            }
        }
    }
    if pending {
        out.push('>'); // truncated corpus stream ends inside a start tag
    }
    out
}

#[test]
fn every_event_split_matches_whole_document_validation() {
    let schema = book_schema();
    let documents = corpus(&schema, 10);
    let mut reference = schema.validator();
    let mut service = schema.service();
    for (i, events) in documents.iter().enumerate() {
        let expected = whole_document(&mut reference, events);
        for split in 0..=events.len() {
            let doc = service.open();
            let _ = service.feed(doc, &events[..split]);
            let _ = service.feed(doc, &events[split..]);
            let got = render_result(&service.finish(doc));
            assert_eq!(got, expected, "document {i}, split at event {split}");
        }
    }
}

#[test]
fn every_byte_split_matches_whole_document_validation() {
    let schema = book_schema();
    // Eight documents cover each corruption mode (and a valid book) once.
    let documents = corpus(&schema, 8);
    let mut reference = schema.validator();
    let mut service = schema.service();
    for (i, events) in documents.iter().enumerate() {
        let expected = whole_document(&mut reference, events);
        let xml = to_xml(&schema, events, 0xB17E ^ i as u64);
        // Whole-stream first, then every two-chunk split of the bytes —
        // splits land mid-name, mid-attribute, mid-comment, mid-CDATA.
        let doc = service.open();
        let _ = service.feed_bytes(doc, xml.as_bytes());
        assert_eq!(
            render_result(&service.finish(doc)),
            expected,
            "document {i}, unsplit bytes"
        );
        for split in 0..xml.len() {
            let doc = service.open();
            let _ = service.feed_bytes(doc, &xml.as_bytes()[..split]);
            let _ = service.feed_bytes(doc, &xml.as_bytes()[split..]);
            let got = render_result(&service.finish(doc));
            assert_eq!(got, expected, "document {i}, split at byte {split}");
        }
    }
}

#[test]
fn random_interleavings_across_64_handles() {
    let schema = book_schema();
    let documents = corpus(&schema, 64);
    let mut reference = schema.validator();
    let expected: Vec<String> = documents
        .iter()
        .map(|events| whole_document(&mut reference, events))
        .collect();
    assert!(
        expected.iter().any(|r| r == "ok") && expected.iter().any(|r| r != "ok"),
        "sanity: the corpus mixes valid and invalid documents"
    );

    let mut service = schema.service();
    for round in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0x1B7E ^ (round * 0x9E37));
        // Every document is either an event stream or a byte stream this
        // round; chunks of random size are fed in random handle order.
        let streams: Vec<Option<String>> = documents
            .iter()
            .enumerate()
            .map(|(i, events)| {
                (i as u64 % 2 == round % 2).then(|| to_xml(&schema, events, round ^ i as u64))
            })
            .collect();
        let handles: Vec<redet::DocId> = (0..documents.len()).map(|_| service.open()).collect();
        let mut cursors = vec![0usize; documents.len()];
        let mut live: Vec<usize> = (0..documents.len()).collect();
        while !live.is_empty() {
            let pick = rng.gen_range(0..live.len());
            let index = live[pick];
            let chunk = 1 + rng.gen_range(0..64usize);
            let status = match &streams[index] {
                Some(xml) => {
                    let bytes = xml.as_bytes();
                    let end = (cursors[index] + chunk).min(bytes.len());
                    let status = service.feed_bytes(handles[index], &bytes[cursors[index]..end]);
                    cursors[index] = end;
                    if end == bytes.len() {
                        live.swap_remove(pick);
                    }
                    status
                }
                None => {
                    let events = &documents[index];
                    let end = (cursors[index] + chunk).min(events.len());
                    let status = service.feed(handles[index], &events[cursors[index]..end]);
                    cursors[index] = end;
                    if end == events.len() {
                        live.swap_remove(pick);
                    }
                    status
                }
            };
            if expected[index] == "ok" {
                assert_ne!(
                    status,
                    FeedStatus::Rejected,
                    "round {round}: valid document {index} rejected mid-stream"
                );
            }
        }
        for (index, handle) in handles.into_iter().enumerate() {
            let got = render_result(&service.finish(handle));
            assert_eq!(got, expected[index], "round {round}, document {index}");
        }
    }
}

#[test]
fn limit_rejections_are_chunking_invariant() {
    // Resource-limit rejections honor the same contract as schema
    // rejections: however the stream is chunked — and, where both
    // transports can trip the limit, whether it arrives as events or as
    // bytes — the retained `E3xx` diagnostic is byte-identical.
    let schema = book_schema();
    let events = redet_bench::book_document_events(&schema, 2, 42);
    let xml = to_xml(&schema, &events, 0xFACE);
    let half_events = (events.len() / 2) as u64;

    // (label, limits, expected code, trippable by event feeding?)
    let configs: [(&str, ServiceLimits, Code, bool); 4] = [
        (
            "depth",
            ServiceLimits::default().with_max_depth(4),
            Code::DepthLimitExceeded,
            true,
        ),
        (
            "events",
            ServiceLimits::default().with_max_events(half_events),
            Code::EventLimitExceeded,
            true,
        ),
        (
            "bytes",
            ServiceLimits::default().with_max_bytes(xml.len() as u64 / 2),
            Code::ByteLimitExceeded,
            false,
        ),
        (
            "name",
            ServiceLimits::default().with_max_name_len(6),
            Code::NameLimitExceeded,
            false,
        ),
    ];
    for (label, limits, code, event_trippable) in configs {
        let mut service = schema.service_with_limits(limits);
        let mut renders: Vec<String> = Vec::new();
        // Every two-chunk byte split, plus the unsplit stream.
        for split in 0..=xml.len() {
            let doc = service.open();
            let _ = service.feed_bytes(doc, &xml.as_bytes()[..split]);
            let _ = service.feed_bytes(doc, &xml.as_bytes()[split..]);
            let err = service.finish(doc).expect_err(label);
            assert_eq!(err.code(), code, "{label}, split at byte {split}");
            renders.push(render(&err));
        }
        // Depth and event budgets see the same event stream either way:
        // every two-chunk event split must render identically too.
        if event_trippable {
            for split in 0..=events.len() {
                let doc = service.open();
                let _ = service.feed(doc, &events[..split]);
                let _ = service.feed(doc, &events[split..]);
                let err = service.finish(doc).expect_err(label);
                assert_eq!(err.code(), code, "{label}, split at event {split}");
                renders.push(render(&err));
            }
        }
        // Many-chunk randomized splits join the pool as well.
        let mut rng = StdRng::seed_from_u64(0x11117);
        for round in 0..8 {
            let doc = service.open();
            let mut cursor = 0;
            while cursor < xml.len() {
                let end = (cursor + 1 + rng.gen_range(0..13usize)).min(xml.len());
                let _ = service.feed_bytes(doc, &xml.as_bytes()[cursor..end]);
                cursor = end;
            }
            let err = service.finish(doc).expect_err(label);
            renders.push(render(&err));
            let _ = round;
        }
        assert!(
            renders.windows(2).all(|w| w[0] == w[1]),
            "{label}: diagnostics diverge across chunkings:\n  {}\n  {}",
            renders.first().unwrap(),
            renders.iter().find(|r| *r != &renders[0]).unwrap()
        );
    }
}

#[test]
fn rejected_handles_consume_no_further_work() {
    let schema = book_schema();
    let mut service = schema.service();
    let chapter = schema.lookup("chapter").unwrap();
    let locator = schema.lookup("locator").unwrap();
    let doc = service.open();
    // <chapter> must start with <title>; <locator> rejects immediately.
    assert_eq!(
        service.feed(doc, &[DocEvent::Open(chapter), DocEvent::Open(locator)]),
        FeedStatus::Rejected
    );
    let retained = render(service.diagnostic(doc).expect("rejected"));
    let depth = service.depth(doc);
    // Feeding a rejected handle is a no-op: no frames move, the retained
    // diagnostic never changes, and the status stays Rejected.
    for _ in 0..8 {
        assert_eq!(
            service.feed(doc, &[DocEvent::Open(chapter), DocEvent::Close]),
            FeedStatus::Rejected
        );
        assert_eq!(service.feed_bytes(doc, b"<chapter/>"), FeedStatus::Rejected);
    }
    assert_eq!(service.depth(doc), depth);
    assert_eq!(render(service.diagnostic(doc).expect("rejected")), retained);
    assert_eq!(render_result(&service.finish(doc)), retained);
}
