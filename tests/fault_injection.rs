//! Seeded fault-injection suite for the resource-governed serving stack.
//!
//! A front end under attack sees *everything at once*: truncated and
//! duplicated chunks, reordered deliveries, clients that vanish mid-
//! document, stale and double-closed handles, documents built to land
//! exactly on a limit boundary, and timer sweeps firing in the middle of
//! all of it. This suite drives a fully governed [`ValidationService`]
//! (every [`ServiceLimits`] cap configured) through thousands of randomized
//! scenarios from the in-repo SplitMix64 PRNG and asserts the global
//! invariants that make the service safe to put behind a socket:
//!
//! * **never panics** — every chaos operation returns a status or a
//!   diagnostic (only cross-service handle mixups panic, by contract);
//! * **never leaks slab slots** — after each scenario drains, `in_flight`
//!   returns to zero and the slab never outgrows the admission cap;
//! * **deterministic** — the same master seed replays the same transcript
//!   of statuses and diagnostic codes, so any failure here reproduces
//!   byte-for-byte from its seed.
//!
//! (The companion `allocation_regression` suite pins the third hardening
//! invariant — limit checks, empty tick sweeps and rejected-handle feeds
//! allocate nothing in steady state — under its counting allocator.)

use redet::schema::{FeedStatus, ServiceLimits};
use redet::{
    Code, DocEvent, DocId, Schema, SchemaBuilder, Symbol, ValidationService, ValidatorPool,
};
use redet_bench::{book_document_events, events_to_xml};
use redet_workloads::rng::StdRng;
use std::fmt::Write as _;
use std::sync::Arc;

const MASTER_SEED: u64 = 0xC4A0_5EED;
const SCENARIOS: usize = 1200;

fn book_schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles")
}

/// A hot-swap variant of the book schema: identical declarations plus one
/// appended `<!ATTLIST>` line. The declaration order (and thus the symbol
/// interning order) is untouched and the added attribute name is already
/// interned, so symbols looked up against v1 stay valid — and verdicts
/// identical — under v2. That keeps swap chaos deterministic: a publish
/// may land between any two operations without changing any transcript
/// outcome, exactly like a registry re-publish of a compatible revision.
fn book_schema_v2() -> Arc<Schema> {
    let source = format!(
        "{}\n<!ATTLIST title role CDATA #IMPLIED>",
        redet_workloads::BOOK_DTD
    );
    SchemaBuilder::new()
        .parse_dtd(&source)
        .build()
        .expect("BOOK_DTD v2 compiles")
}

/// Every cap configured, sized so ordinary corpus documents pass but the
/// generator can steer onto each boundary.
fn governed() -> ServiceLimits {
    ServiceLimits::default()
        .with_max_depth(24)
        .with_max_bytes(8 << 10)
        .with_max_events(600)
        .with_max_name_len(16)
        .with_max_in_flight(12)
        .with_idle_budget(6)
}

/// A document steered near (or past) a limit boundary: deeply nested valid
/// sections around the depth cap, or an event stream around the event
/// budget — the off-by-one hunting grounds.
fn boundary_document(schema: &Schema, rng: &mut StdRng) -> Vec<DocEvent> {
    let s = |name: &str| schema.lookup(name).expect("BOOK_DTD element");
    let mut events = Vec::new();
    let open = |events: &mut Vec<DocEvent>, name: &str| events.push(DocEvent::Open(s(name)));
    let leaf = |events: &mut Vec<DocEvent>, sym: Symbol| {
        events.push(DocEvent::Open(sym));
        events.push(DocEvent::Close);
    };
    open(&mut events, "book");
    open(&mut events, "front");
    leaf(&mut events, s("title"));
    leaf(&mut events, s("author"));
    events.push(DocEvent::Close);
    open(&mut events, "body");
    open(&mut events, "chapter");
    leaf(&mut events, s("title"));
    // Depth here is 3 (book > body > chapter); sections nest on top of it.
    // The cap is 24, so 19..23 extra levels straddles the boundary.
    let levels = rng.gen_range(19..24usize);
    for _ in 0..levels {
        open(&mut events, "section");
        leaf(&mut events, s("title"));
        leaf(&mut events, s("para"));
    }
    for _ in 0..levels + 3 {
        events.push(DocEvent::Close); // sections, chapter, body, book
    }
    events
}

/// A corpus document with seeded corruption, as the equivalence suite uses.
fn chaos_document(schema: &Schema, rng: &mut StdRng) -> Vec<DocEvent> {
    let mut events = book_document_events(schema, 1 + rng.gen_range(0..2usize), rng.next_u64());
    match rng.gen_range(0..5u32) {
        0 => {}                                               // valid
        1 => events.truncate(rng.gen_range(1..events.len())), // client vanished
        2 => {
            let j = rng.gen_range(1..events.len());
            events.insert(j, DocEvent::Close); // a close too many
        }
        3 => {
            let j = rng.gen_range(0..events.len());
            if let DocEvent::Open(_) = events[j] {
                events[j] = DocEvent::Open(schema.lookup("locator").unwrap());
            }
        }
        _ => return boundary_document(schema, rng),
    }
    events
}

/// Chunks `bytes` and injects delivery faults: truncated tails, duplicated
/// chunks, adjacent chunks swapped. Returns the chunk schedule.
fn chaos_chunks<'a>(bytes: &'a [u8], rng: &mut StdRng) -> Vec<&'a [u8]> {
    let mut chunks: Vec<&[u8]> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let end = (i + 1 + rng.gen_range(0..48usize)).min(bytes.len());
        chunks.push(&bytes[i..end]);
        i = end;
    }
    match rng.gen_range(0..4u32) {
        0 if chunks.len() > 1 => {
            // Truncated delivery: the tail never arrives.
            let keep = rng.gen_range(1..chunks.len());
            chunks.truncate(keep);
        }
        1 if !chunks.is_empty() => {
            // A duplicated chunk (a retry that was not idempotent).
            let j = rng.gen_range(0..chunks.len());
            chunks.insert(j, chunks[j]);
        }
        2 if chunks.len() > 1 => {
            // Two adjacent chunks reordered.
            let j = rng.gen_range(0..chunks.len() - 1);
            chunks.swap(j, j + 1);
        }
        _ => {}
    }
    chunks
}

/// Renders an operation outcome into the scenario transcript.
fn record(transcript: &mut String, op: &str, status: FeedStatus) {
    let _ = write!(transcript, "{op}:{status:?};");
}

/// One randomized scenario against the shared governed service. Appends
/// every outcome to `transcript` and leaves the service fully drained.
fn run_scenario(
    service: &mut ValidationService,
    schema: &Schema,
    variants: &[Arc<Schema>],
    seed: u64,
    clock: &mut u64,
    transcript: &mut String,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = write!(transcript, "#{seed:x}|");
    // Live handles with their pending work; a graveyard of released
    // handles for stale/double-close probes.
    let mut live: Vec<(DocId, Vec<DocEvent>, usize)> = Vec::new();
    let mut graveyard: Vec<DocId> = Vec::new();
    for _ in 0..rng.gen_range(12..40usize) {
        match rng.gen_range(0..11u32) {
            // Admission — sometimes a whole burst, straight into refusal
            // at the cap (the backpressure edge a front end sheds load on).
            0 | 1 => {
                let burst = if rng.gen_bool(0.15) {
                    service.limits().max_in_flight().unwrap() as usize + 1
                } else {
                    1
                };
                for _ in 0..burst {
                    match service.try_open() {
                        Ok(doc) => {
                            let events = chaos_document(schema, &mut rng);
                            live.push((doc, events, 0));
                            let _ = write!(transcript, "open;");
                        }
                        Err(refused) => {
                            assert_eq!(refused.code(), Code::ServiceOverloaded);
                            let _ = write!(transcript, "refused;");
                            break;
                        }
                    }
                }
            }
            // Feed an event chunk to a random live handle.
            2 | 3 => {
                if live.is_empty() {
                    continue;
                }
                let pick = rng.gen_range(0..live.len());
                let (doc, events, cursor) = &mut live[pick];
                let end = (*cursor + 1 + rng.gen_range(0..24usize)).min(events.len());
                let status = service.feed(*doc, &events[*cursor..end]);
                *cursor = end;
                record(transcript, "feed", status);
            }
            // Feed the byte rendering through the chaos chunker.
            4 => {
                if live.is_empty() {
                    continue;
                }
                let pick = rng.gen_range(0..live.len());
                let (doc, events, cursor) = live.swap_remove(pick);
                // Only stream documents whose events balance (the byte
                // renderer walks a name stack); feed the rest as events.
                let balanced = events.iter().fold(0i64, |d, e| match e {
                    DocEvent::Open(_) => d + 1,
                    _ => d - 1,
                });
                if balanced != 0 || cursor > 0 {
                    let status = service.feed(doc, &events[cursor..]);
                    record(transcript, "drain", status);
                } else {
                    let xml = events_to_xml(schema, &events);
                    for chunk in chaos_chunks(xml.as_bytes(), &mut rng) {
                        let status = service.feed_bytes(doc, chunk);
                        record(transcript, "bytes", status);
                        if status == FeedStatus::Rejected && rng.gen_bool(0.5) {
                            break; // a polite client stops on rejection
                        }
                    }
                }
                match service.finish(doc) {
                    Ok(()) => transcript.push_str("fin:ok;"),
                    Err(d) => {
                        let _ = write!(transcript, "fin:{:?};", d.code());
                    }
                }
                graveyard.push(doc);
            }
            // Abandon a handle (close), then keep its corpse around.
            5 => {
                if live.is_empty() {
                    continue;
                }
                let (doc, _, _) = live.swap_remove(rng.gen_range(0..live.len()));
                service.close(doc);
                graveyard.push(doc);
                transcript.push_str("close;");
            }
            // Finish a handle mid-document.
            6 => {
                if live.is_empty() {
                    continue;
                }
                let (doc, _, _) = live.swap_remove(rng.gen_range(0..live.len()));
                match service.finish(doc) {
                    Ok(()) => transcript.push_str("mid:ok;"),
                    Err(d) => {
                        let _ = write!(transcript, "mid:{:?};", d.code());
                    }
                }
                graveyard.push(doc);
            }
            // Advance the logical clock — sweeps may fire mid-document.
            7 => {
                *clock += rng.gen_range(0..10u64);
                let swept = service.tick(*clock);
                let _ = write!(transcript, "tick+{swept};");
                // Swept handles stay queryable until drained.
                live.retain(|(doc, _, _)| {
                    if service.status(*doc) == FeedStatus::Rejected
                        && service
                            .diagnostic(*doc)
                            .is_some_and(|d| d.code() == Code::IdleTimeout)
                    {
                        let err = service.finish(*doc).expect_err("swept");
                        assert_eq!(err.code(), Code::IdleTimeout);
                        graveyard.push(*doc);
                        false
                    } else {
                        true
                    }
                });
            }
            // Registry publish: hot-swap the service's schema mid-feed.
            // The variants are behaviorally identical revisions, so no
            // transcript outcome moves — but the spare list is flushed and
            // handles finishing under a superseded Arc are dropped instead
            // of recycled, the exact hygiene a swap must get right.
            8 => {
                let pick = rng.gen_range(0..variants.len());
                service.swap_schema(Arc::clone(&variants[pick]));
                let _ = write!(transcript, "swap{pick};");
            }
            // Necromancy: operate on stale handles. Every op must be
            // graceful and must not disturb live handles.
            _ => {
                let Some(&doc) = graveyard.last() else {
                    continue;
                };
                // `doc`'s slot may have been recycled to a *live* handle;
                // staleness is per-generation, so the probes below are
                // no-ops either way only if the handle itself is stale.
                if service.status(doc) != FeedStatus::Stale {
                    continue;
                }
                assert_eq!(service.feed(doc, &[DocEvent::Close]), FeedStatus::Stale);
                assert_eq!(service.feed_bytes(doc, b"<book>"), FeedStatus::Stale);
                assert!(service.diagnostic(doc).is_none());
                assert_eq!(service.depth(doc), 0);
                let err = service.finish(doc).expect_err("stale");
                assert_eq!(err.code(), Code::StaleHandle);
                service.close(doc); // double close: a no-op
                service.close(doc);
                transcript.push_str("stale;");
            }
        }
        let cap = service.limits().max_in_flight().unwrap() as usize;
        assert!(service.in_flight() <= cap, "admission cap breached");
        assert!(service.slab_size() <= cap, "slab outgrew the admission cap");
    }
    // Drain: every handle still live is finished or closed.
    for (doc, _, _) in live {
        if rng.gen_bool(0.5) {
            let _ = service.finish(doc);
        } else {
            service.close(doc);
        }
    }
    assert_eq!(service.in_flight(), 0, "scenario leaked slab slots");
}

/// Runs the full scenario schedule against a fresh governed service and
/// returns the transcript.
fn run_suite(master_seed: u64) -> String {
    let schema = book_schema();
    let variants = [Arc::clone(&schema), book_schema_v2()];
    let mut service = ValidationService::with_limits(Arc::clone(&schema), governed());
    let mut master = StdRng::seed_from_u64(master_seed);
    let mut clock = 0u64;
    let mut transcript = String::new();
    for _ in 0..SCENARIOS {
        run_scenario(
            &mut service,
            &schema,
            &variants,
            master.next_u64(),
            &mut clock,
            &mut transcript,
        );
    }
    assert_eq!(service.in_flight(), 0);
    assert!(
        service.slab_size() <= governed().max_in_flight().unwrap() as usize,
        "slab high-water mark exceeded the admission cap"
    );
    transcript
}

#[test]
fn chaos_scenarios_never_panic_and_never_leak() {
    let transcript = run_suite(MASTER_SEED);
    // Sanity: the chaos actually exercised every interesting path.
    for marker in [
        "refused;",
        "tick+",
        "stale;",
        "fin:ok;",
        "bytes:Rejected",
        "swap0;",
        "swap1;",
    ] {
        assert!(
            transcript.contains(marker),
            "chaos never hit {marker:?} — the generator lost coverage"
        );
    }
}

#[test]
fn chaos_transcripts_replay_from_their_seed() {
    // Determinism is what turns a red CI run into a local repro: the same
    // master seed must drive byte-identical statuses and diagnostics.
    assert_eq!(run_suite(MASTER_SEED), run_suite(MASTER_SEED));
    assert_ne!(
        run_suite(MASTER_SEED),
        run_suite(MASTER_SEED ^ 1),
        "sanity: different seeds explore different schedules"
    );
}

#[test]
fn slab_churn_returns_to_baseline() {
    // 10k open→{feed,reject,finish,close} cycles: the slab must end where
    // it started — `in_flight` at zero and the slot count at its
    // concurrent high-water mark, not its cumulative churn.
    let schema = book_schema();
    let mut service = ValidationService::with_limits(Arc::clone(&schema), governed());
    let valid = book_document_events(&schema, 1, 7);
    let book = schema.lookup("book").unwrap();
    let locator = schema.lookup("locator").unwrap();
    let mut rng = StdRng::seed_from_u64(0x10_000);
    // Warm the slab to its high-water mark once.
    let warm: Vec<DocId> = (0..8).map(|_| service.try_open().unwrap()).collect();
    for doc in warm {
        service.close(doc);
    }
    let baseline = service.slab_size();
    for i in 0..10_000u32 {
        let doc = service.try_open().expect("under the cap");
        match i % 4 {
            0 => {
                // open → feed valid → finish
                assert_eq!(service.feed(doc, &valid), FeedStatus::Accepted);
                assert!(service.finish(doc).is_ok());
            }
            1 => {
                // open → reject → close (<locator> cannot start <book>)
                assert_eq!(
                    service.feed(doc, &[DocEvent::Open(book), DocEvent::Open(locator)]),
                    FeedStatus::Rejected
                );
                service.close(doc);
            }
            2 => {
                // open → partial feed → finish (unbalanced)
                let cut = rng.gen_range(1..valid.len());
                let _ = service.feed(doc, &valid[..cut]);
                assert!(service.finish(doc).is_err());
            }
            _ => service.close(doc), // open → close untouched
        }
        assert_eq!(service.in_flight(), 0, "iteration {i} leaked a slot");
    }
    assert_eq!(
        service.slab_size(),
        baseline,
        "10k churn iterations grew the slab past its high-water baseline"
    );
}

#[test]
fn publish_storms_never_panic_and_never_leak() {
    // Swap-mid-feed, swap-then-sweep, and a publish storm to one id: the
    // registry hazards distilled. In-flight documents must finish on the
    // Arc they opened under, recycled buffers must never cross a swap, and
    // the slab must return to baseline.
    let v1 = book_schema();
    let v2 = book_schema_v2();
    let mut service = ValidationService::with_limits(Arc::clone(&v1), governed());
    let valid = book_document_events(&v1, 1, 99);
    let cap = governed().max_in_flight().unwrap() as usize;

    // Swap mid-feed: half the cap opens under v1, v2 lands mid-document,
    // every document still finishes validly.
    let mut clock = 0u64;
    for round in 0..50u64 {
        let docs: Vec<DocId> = (0..cap / 2).map(|_| service.try_open().unwrap()).collect();
        let cut = valid.len() / 2;
        for &doc in &docs {
            assert_eq!(service.feed(doc, &valid[..cut]), FeedStatus::NeedMore);
        }
        let swap_to = if round % 2 == 0 { &v2 } else { &v1 };
        service.swap_schema(Arc::clone(swap_to));
        for &doc in &docs {
            assert_eq!(service.feed(doc, &valid[cut..]), FeedStatus::Accepted);
            assert!(service.finish(doc).is_ok());
        }
        assert_eq!(service.in_flight(), 0, "round {round} leaked");
        assert!(service.slab_size() <= cap);
    }

    // Swap-then-sweep: idle handles opened under one schema are swept
    // after a swap — the tick path drops (not recycles) their buffers.
    for round in 0..20u64 {
        let doc = service.try_open().unwrap();
        assert_eq!(service.feed(doc, &valid[..3]), FeedStatus::NeedMore);
        service.swap_schema(Arc::clone(if round % 2 == 0 { &v1 } else { &v2 }));
        clock += governed().idle_budget().unwrap() + 1;
        assert_eq!(service.tick(clock), 1);
        assert_eq!(
            service.finish(doc).unwrap_err().code(),
            Code::IdleTimeout,
            "round {round}"
        );
        assert_eq!(service.in_flight(), 0);
    }

    // Publish storm: a thousand back-to-back swaps with handles open.
    let docs: Vec<DocId> = (0..cap / 2).map(|_| service.try_open().unwrap()).collect();
    for i in 0..1000u64 {
        service.swap_schema(Arc::clone(if i % 2 == 0 { &v2 } else { &v1 }));
    }
    for &doc in &docs {
        assert_eq!(service.feed(doc, &valid), FeedStatus::Accepted);
        assert!(service.finish(doc).is_ok());
    }
    assert_eq!(service.in_flight(), 0, "storm leaked slab slots");
    assert!(service.slab_size() <= cap, "storm grew the slab");

    // The service still serves: a full open/feed/finish cycle post-storm.
    let doc = service.try_open().unwrap();
    assert_eq!(service.feed(doc, &valid), FeedStatus::Accepted);
    assert!(service.finish(doc).is_ok());

    // Nothing in the service still pins the superseded artifact.
    drop(service);
    assert_eq!(Arc::strong_count(&v1), 1);
    assert_eq!(Arc::strong_count(&v2), 1);
}

#[test]
fn poisoned_batches_degrade_per_document_under_chaos() {
    // Random batches seeded with panicking documents: every poison slot
    // degrades to its own E308 verdict, every other slot matches the
    // single-service reference, input order is preserved, and the pool
    // serves the next batch with replaced workers.
    let schema = book_schema();
    let poison = vec![DocEvent::Open(Symbol::from_index(0xFFFF))];
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep expected panics quiet
    let mut rng = StdRng::seed_from_u64(0xBAD_D0C);
    let mut pool = ValidatorPool::with_limits(Arc::clone(&schema), 3, governed());
    let mut reference = ValidationService::with_limits(Arc::clone(&schema), governed());
    for _round in 0..20 {
        let documents: Vec<Vec<DocEvent>> = (0..rng.gen_range(1..24usize))
            .map(|_| {
                if rng.gen_bool(0.2) {
                    poison.clone()
                } else {
                    chaos_document(&schema, &mut rng)
                }
            })
            .collect();
        let results = pool.validate_batch(&documents);
        assert_eq!(results.len(), documents.len());
        for (doc, result) in documents.iter().zip(&results) {
            if doc == &poison {
                assert_eq!(result.as_ref().unwrap_err().code(), Code::PoisonedDocument);
            } else {
                let expected = reference.validate_events(doc);
                assert_eq!(format!("{expected:?}"), format!("{result:?}"));
            }
        }
    }
    std::panic::set_hook(prior);
}
