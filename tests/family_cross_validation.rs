//! Property-style cross-validation over every `redet-workloads` family.
//!
//! For each family (mixed content, CHARE, k-ORE, bounded alternation depth,
//! star-free) and several seeds/sizes, the expression is compiled **once**
//! into the shared `CompiledAnalysis` artifact; all five matchers are
//! constructed from that artifact via `DeterministicRegex::with_strategy`
//! and must agree with the Glushkov DFA baseline on member and non-member
//! words.

use redet::{CompiledAnalysis, DeterministicRegex, MatchStrategy};
use redet_syntax::Symbol;
use redet_workloads as workloads;
use redet_workloads::Workload;
use std::sync::Arc;

/// Member words sampled from the language plus uniformly random words
/// (mostly non-members), all reproducible from `seed`.
fn sample_words(w: &Workload, seed: u64) -> Vec<Vec<Symbol>> {
    let mut words = vec![Vec::new()];
    for s in 0..8u64 {
        words.push(workloads::sample_member_word(&w.regex, 30, seed ^ (s * 31)));
        words.push(workloads::sample_random_word(
            &w.alphabet,
            (s as usize * 5) % 23,
            seed.wrapping_add(s),
        ));
    }
    words
}

/// Compiles the workload once and checks every applicable strategy against
/// the Glushkov DFA baseline on the same artifact.
fn check_family(name: &str, w: &Workload, seed: u64) {
    let compiled = CompiledAnalysis::from_regex(w.regex.clone(), w.alphabet.clone())
        .unwrap_or_else(|e| panic!("{name}: workload should be deterministic: {e}"));
    let words = sample_words(w, seed);

    let reference = DeterministicRegex::from_compiled(compiled.clone(), MatchStrategy::GlushkovDfa)
        .unwrap_or_else(|e| panic!("{name}: baseline should build: {e}"));
    let expected: Vec<bool> = words
        .iter()
        .map(|word| reference.matches_symbols(word))
        .collect();
    assert!(
        expected.iter().any(|&b| b),
        "{name}: sampling should produce at least one member word"
    );

    let strategies = [
        MatchStrategy::Auto,
        MatchStrategy::KOccurrence,
        MatchStrategy::PathDecomposition,
        MatchStrategy::ColoredAncestor,
        MatchStrategy::StarFree,
    ];
    for strategy in strategies {
        let model = match reference.with_strategy(strategy) {
            Ok(model) => model,
            // Star-free matching legitimately refuses starred expressions.
            Err(_) if strategy == MatchStrategy::StarFree && !compiled.stats().star_free => {
                continue
            }
            Err(e) => panic!("{name}: {strategy:?} should build: {e}"),
        };
        // Every strategy runs on the same compilation artifact.
        assert!(
            Arc::ptr_eq(model.compiled(), &compiled),
            "{name}: {strategy:?}"
        );
        for (word, &expect) in words.iter().zip(&expected) {
            assert_eq!(
                model.matches_symbols(word),
                expect,
                "{name} ({strategy:?}) disagrees with the DFA baseline on {word:?}"
            );
        }
        // Batch validation agrees with word-by-word validation.
        assert_eq!(
            model.matches_all(&words),
            expected,
            "{name} ({strategy:?}): batch disagrees"
        );
    }
}

#[test]
fn mixed_content_family() {
    for m in [1usize, 2, 8, 33, 128] {
        check_family("mixed content", &workloads::mixed_content(m), m as u64);
    }
}

#[test]
fn chare_family() {
    for seed in 0..8 {
        let w = workloads::chare(12 + seed as usize * 7, 4, seed);
        check_family("CHARE", &w, seed);
    }
}

#[test]
fn star_free_family() {
    for seed in 0..8 {
        let w = workloads::star_free_chare(10 + seed as usize * 5, 4, seed);
        assert!(
            w.regex.is_star_free(),
            "star_free_chare must generate star-free expressions"
        );
        check_family("star-free CHARE", &w, seed);
    }
}

#[test]
fn k_occurrence_family() {
    for (k, seed) in [(1usize, 1u64), (2, 2), (3, 3), (5, 4), (8, 5)] {
        let w = workloads::k_occurrence(k, 6, 3, seed);
        check_family("k-occurrence", &w, seed);
    }
}

#[test]
fn deep_alternation_family() {
    for depth in [1usize, 2, 4, 9, 16] {
        let w = workloads::deep_alternation(depth, depth as u64);
        check_family("deep alternation", &w, depth as u64);
    }
}
