//! Hot-swap semantics of the schema registry, end to end.
//!
//! The contract under test (ISSUE 10's acceptance criteria):
//!
//! * a document opened against schema v1 **finishes validly** after v2 is
//!   published mid-flight — in-flight handles complete on the pre-publish
//!   `Arc<Schema>`;
//! * a post-publish open **rejects the same document under v2**, with a
//!   diagnostic byte-identical across event and byte feeds;
//! * the old artifact is dropped only after its last handle closes;
//! * the verdicts stay byte-identical to in-process validation over the
//!   TCP wire, across a live `P` (publish) request;
//! * the content-hashed compile cache performs exactly `distinct` pipeline
//!   compilations for a corpus of repeated schema texts.

use redet_core::Code;
use redet_schema::registry::Registry;
use redet_schema::{DocEvent, Schema, SchemaBuilder, ServiceLimits};
use redet_server::{wire, SchemaRouter, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// v1: a record is `(title, author)`.
const V1_DTD: &str = "<!ELEMENT doc (title, author)>\n\
                      <!ELEMENT title (#PCDATA)>\n\
                      <!ELEMENT author (#PCDATA)>";

/// v2 tightens the model: a record now also requires a `year`.
const V2_DTD: &str = "<!ELEMENT doc (title, author, year)>\n\
                      <!ELEMENT title (#PCDATA)>\n\
                      <!ELEMENT author (#PCDATA)>\n\
                      <!ELEMENT year (#PCDATA)>";

/// Valid under v1, invalid under v2 (missing the required `year`).
const V1_DOC: &[u8] = b"<doc><title/><author/></doc>";

fn build(dtd: &str) -> Arc<Schema> {
    SchemaBuilder::new().parse_dtd(dtd).build().unwrap()
}

/// The v1 document as pre-interned events of `schema`.
fn v1_doc_events(schema: &Schema) -> Vec<DocEvent> {
    let sym = |name: &str| schema.lookup(name).unwrap();
    vec![
        DocEvent::Open(sym("doc")),
        DocEvent::Open(sym("title")),
        DocEvent::Close,
        DocEvent::Open(sym("author")),
        DocEvent::Close,
        DocEvent::Close,
    ]
}

#[test]
fn in_flight_document_finishes_on_pre_publish_schema() {
    let mut registry = Registry::new();
    let v1 = registry.publish("doc", V1_DTD).unwrap();
    let handle = Arc::clone(registry.handle("doc").unwrap());

    let mut service = handle.load().service();
    let in_flight = service.try_open().unwrap();
    // Half the document arrives…
    let _ = service.feed_bytes(in_flight, b"<doc><title/>");

    // …then v2 is published mid-flight.
    let v2 = registry.publish("doc", V2_DTD).unwrap();
    assert_eq!(handle.epoch(), 1);
    service.swap_schema(handle.load());

    // The in-flight document still completes validly against v1.
    let _ = service.feed_bytes(in_flight, b"<author/></doc>");
    assert!(service.finish(in_flight).is_ok());

    // A post-publish open binds v2 and rejects the same bytes.
    let reopened = service.try_open().unwrap();
    let _ = service.feed_bytes(reopened, V1_DOC);
    let rejection = service.finish(reopened).unwrap_err();
    assert_eq!(rejection.code(), Code::IncompleteElement);

    // The event feed (interned against v2) reports the byte-identical
    // diagnostic at the same event index.
    let mut validator = v2.validator();
    let event_rejection = validator
        .validate_events(&v1_doc_events(&v2))
        .unwrap_err()
        .remove(0);
    assert_eq!(format!("{rejection:?}"), format!("{event_rejection:?}"));
    drop(v1);
}

#[test]
fn old_artifact_drops_with_its_last_handle() {
    let mut registry = Registry::new();
    let v1 = registry.publish("doc", V1_DTD).unwrap();
    let handle = Arc::clone(registry.handle("doc").unwrap());

    let mut service = handle.load().service();
    let in_flight = service.try_open().unwrap();
    let _ = service.feed_bytes(in_flight, b"<doc>");

    registry.publish("doc", V2_DTD).unwrap();
    service.swap_schema(handle.load());

    // Holders of v1 while the swapped service still validates the
    // in-flight doc: this test's `v1` binding plus the document's own
    // validator clone (the registry cache holds one more).
    let held_while_in_flight = Arc::strong_count(&v1);
    let _ = service.feed_bytes(in_flight, b"<title/><author/></doc>");
    assert!(service.finish(in_flight).is_ok());

    // Finishing released the validator's clone — nothing in the service
    // (spare list included) still references v1.
    assert_eq!(Arc::strong_count(&v1), held_while_in_flight - 1);

    // New opens allocate against v2 only.
    let reopened = service.try_open().unwrap();
    let count_after_reopen = Arc::strong_count(&v1);
    assert_eq!(count_after_reopen, held_while_in_flight - 1);
    service.close(reopened);
}

#[test]
fn swap_verdicts_are_byte_identical_over_tcp() {
    // A real server with v1 registered, its registry seeded the way the
    // CLI seeds it.
    let mut registry = Registry::new();
    let v1 = registry.publish("doc", V1_DTD).unwrap();
    let mut router = SchemaRouter::new();
    router
        .register("doc", Arc::clone(&v1), ServiceLimits::default())
        .unwrap();
    let mut server = Server::bind("127.0.0.1:0", router, ServerConfig::default()).unwrap();
    server.set_registry(registry);
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run().unwrap());

    let connect = || {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
    };
    let read_line = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.ends_with('\n'), "truncated response: {line:?}");
        line.pop();
        line
    };

    // Connection A opens a framed v1 document and stalls halfway through.
    let mut stalled = connect();
    stalled
        .write_all(format!("V doc {}\n<doc><title/>", V1_DOC.len()).as_bytes())
        .unwrap();
    stalled.flush().unwrap();

    // Connection B publishes v2 and waits for the ok — after this line the
    // swap has happened inside the poll loop.
    let mut publisher = connect();
    let mut request = format!("P doc {}\n", V2_DTD.len()).into_bytes();
    request.extend_from_slice(V2_DTD.as_bytes());
    publisher.write_all(&request).unwrap();
    let mut publisher = BufReader::new(publisher);
    assert_eq!(read_line(&mut publisher), "ok");

    // Connection A finishes its body: the verdict is v1's — `ok`.
    stalled.write_all(b"<author/></doc>").unwrap();
    let mut stalled = BufReader::new(stalled);
    assert_eq!(read_line(&mut stalled), "ok");

    // A fresh request now validates under v2 and its rejection line is
    // byte-identical to in-process validation against v2.
    let v2 = build(V2_DTD);
    let expected = {
        let mut reference = SchemaRouter::new();
        reference
            .register("doc", v2, ServiceLimits::default())
            .unwrap();
        wire::render_verdict(&reference.validate_bytes("doc", V1_DOC))
    };
    assert!(expected.starts_with("err "), "v2 must reject: {expected}");
    let mut fresh = connect();
    let mut request = format!("V doc {}\n", V1_DOC.len()).into_bytes();
    request.extend_from_slice(V1_DOC);
    fresh.write_all(&request).unwrap();
    let mut fresh = BufReader::new(fresh);
    assert_eq!(read_line(&mut fresh), expected);

    // Unknown ids refuse with E103; the id set is a startup decision.
    let mut unknown = connect();
    unknown.write_all(b"P nope 5\n<!-->").unwrap();
    unknown.write_all(b"x").unwrap();
    let mut unknown = BufReader::new(unknown);
    assert!(read_line(&mut unknown).starts_with("err E103 "));

    shutdown.shutdown();
    let report = server_thread.join().unwrap();
    assert_eq!(report.published, 1);
    assert_eq!(report.documents, 2); // publish responses are not verdicts
    assert_eq!(report.accepted, 1); // the stalled v1 document
    assert_eq!(report.rejected, 1); // the post-publish v2 rejection
}

#[test]
fn corpus_of_256_sources_compiles_exactly_32_times() {
    let sources = redet_workloads::schema_corpus(32, 256, 0x5EED);
    assert_eq!(sources.len(), 256);

    let mut registry = Registry::new();
    let results = registry.compile_corpus(&sources, 8);
    assert_eq!(results.len(), 256);
    for (source, result) in sources.iter().zip(&results) {
        let schema = result.as_ref().expect("corpus schemas compile");
        // Identical text shares one artifact.
        let again = registry.compile(source).unwrap();
        assert!(Arc::ptr_eq(schema, &again));
    }

    let stats = registry.stats();
    assert_eq!(
        stats.compiled, 32,
        "one pipeline compilation per distinct text"
    );
    assert_eq!(stats.misses, 32);
    assert_eq!(stats.cached, 32);
    // 224 corpus hits + the 256 re-compiles above.
    assert_eq!(stats.hits, 224 + 256);

    // Every variant's minimal document validates under its schema.
    for (variant, source) in sources.iter().enumerate().take(8) {
        let schema = registry.compile(source).unwrap();
        let root = schema
            .elements()
            .map(|sym| schema.name(sym).to_owned())
            .find(|name| name.starts_with("rec"))
            .unwrap();
        let variant_id: usize = root["rec".len()..].parse().unwrap();
        let doc = redet_workloads::schema_corpus_document(variant_id);
        let mut service = schema.service();
        assert!(
            service.validate_bytes(doc.as_bytes()).is_ok(),
            "variant {variant} rejects its own minimal document"
        );
    }
}

#[test]
fn concurrent_corpus_compilation_is_deterministic() {
    let sources = redet_workloads::schema_corpus(16, 64, 42);
    let single = Registry::new().compile_corpus(&sources, 1);
    let sharded = Registry::new().compile_corpus(&sources, 8);
    for (a, b) in single.iter().zip(&sharded) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        // Same declarations, same interning order, same dispatch — the
        // artifacts are behaviorally identical whatever the worker count.
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.elements().map(|s| a.name(s)).collect::<Vec<_>>(),
            b.elements().map(|s| b.name(s)).collect::<Vec<_>>()
        );
    }
}
