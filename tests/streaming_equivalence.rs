//! Seeded property suite for the incremental session API: session-fed
//! matching must equal whole-word matching must equal the Glushkov DFA
//! baseline, for **every** strategy — including counted expressions and
//! native `e+` models — and a `Rejected` step at event `i` must be final
//! (no extension of the rejected prefix is ever accepted).

use redet::{
    DeterministicRegex, GlushkovDfaMatcher, MatchScratch, MatchStrategy, Matcher,
    NfaSimulationMatcher, Session, Symbol,
};
use redet_workloads as workloads;
use redet_workloads::rng::StdRng;

const ALL_STRATEGIES: &[MatchStrategy] = &[
    MatchStrategy::Auto,
    MatchStrategy::StarFree,
    MatchStrategy::KOccurrence,
    MatchStrategy::PathDecomposition,
    MatchStrategy::ColoredAncestor,
    MatchStrategy::GlushkovDfa,
    MatchStrategy::CountedSimulation,
];

/// A corpus exercising every structural feature: star-free, stars, native
/// `e+` (DTD plus), and numeric counters.
const CORPUS: &[&str] = &[
    "a",
    "(a + b) (c + d)? e?",
    "(title, author, (year | date)?)",
    "(a b + b (b?) a)*",
    "(c?((a b*)(a? c)))*(b a)",
    "(a (b + c (d + e)))*",
    "(a0 + a1 + a2 + a3 + a4)*",
    "x (a? b)* c",
    // Native one-or-more.
    "(a b)+",
    "(title, author+, (year | date)?)",
    "(a, b+, c)+, d",
    "(x, (a b)+, y)+",
    // Counted models (validated through the unrolled simulation).
    "(a b){2,2} a (b + d)",
    "(a b){2,4} c",
    "(item{1,4}, total)",
    "a{3} (b + c)",
];

/// Drives a session over `word`, returning the membership verdict and the
/// event index of the first rejection, if any.
fn session_verdict(model: &DeterministicRegex, word: &[Symbol]) -> (bool, Option<usize>) {
    let mut session = model.start();
    for &sym in word {
        if !session.feed(sym).is_advanced() {
            let witness = session
                .rejection()
                .expect("rejected sessions carry a witness");
            return (false, Some(witness.event));
        }
    }
    (session.accepts(), None)
}

/// The event at which the language oracle (set-of-positions simulation of
/// the counting-unrolled expression) dies on `word`, if it does. A dead
/// oracle at event `i` means *no* word of the language extends `word[..i]`.
fn oracle_death(oracle: &NfaSimulationMatcher, word: &[Symbol]) -> Option<usize> {
    let mut session = oracle.session();
    for &sym in word {
        if !session.feed(sym).is_advanced() {
            return Some(session.rejection().unwrap().event);
        }
    }
    None
}

/// The model's expression with counters unrolled (re-normalized, because
/// unrolling can reintroduce (R2)/(R3) violations).
fn unrolled_regex(model: &DeterministicRegex) -> redet::Regex {
    redet::syntax::normalize(redet::automata::unroll_counting(model.regex()))
        .expect("unrolled expressions normalize")
}

/// Builds the language oracle for a compiled model: the set-of-positions
/// simulation of its (normalized, counting-unrolled) expression.
fn oracle_for(model: &DeterministicRegex) -> NfaSimulationMatcher {
    if model.stats().counting {
        NfaSimulationMatcher::build(&unrolled_regex(model))
    } else {
        NfaSimulationMatcher::build(model.regex())
    }
}

/// Sample words for a model: members of the language plus uniform noise.
fn sample_words(model: &DeterministicRegex, seed: u64) -> Vec<Vec<Symbol>> {
    let sampling_regex = if model.stats().counting {
        unrolled_regex(model)
    } else {
        model.regex().clone()
    };
    let mut words = vec![Vec::new()];
    for s in 0..8u64 {
        words.push(workloads::sample_member_word(
            &sampling_regex,
            3 + (s as usize) * 4,
            seed ^ (s * 7919),
        ));
        words.push(workloads::sample_random_word(
            model.alphabet(),
            (s as usize * 3) % 11,
            seed.wrapping_add(s),
        ));
    }
    words
}

/// Asserts the full equivalence bundle for one compiled model on one word:
/// session == whole-word == scratch-reusing whole-word, and agreement with
/// the reference verdict.
fn assert_equivalent(
    model: &DeterministicRegex,
    oracle: &NfaSimulationMatcher,
    word: &[Symbol],
    expected: bool,
    context: &str,
) {
    let (session_result, death) = session_verdict(model, word);
    assert_eq!(session_result, expected, "session vs reference: {context}");
    assert_eq!(
        model.matches_symbols(word),
        expected,
        "whole-word vs reference: {context}"
    );
    let mut scratch = MatchScratch::new();
    assert_eq!(
        model.matches_symbols_with(word, &mut scratch),
        expected,
        "scratch-reusing vs reference: {context}"
    );
    // Early-reject: the session dies exactly when the language oracle does —
    // i.e. at the earliest event after which no extension can be accepted.
    assert_eq!(
        death,
        oracle_death(oracle, word),
        "rejection event vs oracle: {context}"
    );
    if let Some(event) = death {
        // Direct witness of finality: no sampled extension of the rejected
        // prefix is accepted.
        let prefix = &word[..event];
        let symbols: Vec<Symbol> = model.alphabet().symbols().collect();
        let mut extended = prefix.to_vec();
        extended.push(word[event]);
        for &extra in symbols.iter().take(3) {
            extended.push(extra);
            assert!(
                !model.matches_symbols(&extended),
                "extension of a rejected prefix accepted: {context}"
            );
        }
    }
}

#[test]
fn corpus_sessions_agree_across_all_strategies() {
    for input in CORPUS {
        let reference = DeterministicRegex::compile(input)
            .unwrap_or_else(|e| panic!("{input} should compile: {e}"));
        let oracle = oracle_for(&reference);
        let words = sample_words(&reference, 0xDEADBEEF);
        // Reference verdicts: the Glushkov DFA where applicable, otherwise
        // (counted expressions) the language oracle.
        let expected: Vec<bool> = match GlushkovDfaMatcher::from_tree(reference.analysis().tree()) {
            Ok(dfa) if !reference.stats().counting => {
                words.iter().map(|w| dfa.matches(w)).collect()
            }
            _ => words.iter().map(|w| oracle.matches(w)).collect(),
        };
        for &strategy in ALL_STRATEGIES {
            let Ok(model) = reference.with_strategy(strategy) else {
                continue; // strategy not applicable to this expression
            };
            for (word, &want) in words.iter().zip(&expected) {
                assert_equivalent(
                    &model,
                    &oracle,
                    word,
                    want,
                    &format!("{input} [{strategy:?}] {word:?}"),
                );
            }
        }
    }
}

#[test]
fn seeded_random_expressions_stream_like_they_match() {
    let mut rng = StdRng::seed_from_u64(0x5E5510);
    let mut checked = 0usize;
    let mut case = 0u64;
    while checked < 192 {
        case += 1;
        let positions = 1 + (rng.next_u64() as usize) % 12;
        let sigma = 1 + (rng.next_u64() as usize) % 3;
        let seed = rng.next_u64();
        let workload = workloads::random_expression(positions, sigma, seed);
        // Only deterministic expressions compile; that is the property's
        // precondition.
        let printed = redet::syntax::printer::to_string(&workload.regex, &workload.alphabet);
        let Ok(reference) = DeterministicRegex::compile(&printed) else {
            continue;
        };
        checked += 1;
        let oracle = oracle_for(&reference);
        let words = sample_words(&reference, seed);
        let expected: Vec<bool> = words.iter().map(|w| oracle.matches(w)).collect();
        for &strategy in ALL_STRATEGIES {
            let Ok(model) = reference.with_strategy(strategy) else {
                continue;
            };
            for (word, &want) in words.iter().zip(&expected) {
                assert_equivalent(
                    &model,
                    &oracle,
                    word,
                    want,
                    &format!("case {case} ({printed}) [{strategy:?}] {word:?}"),
                );
            }
        }
    }
}

#[test]
fn schema_sized_dtd_streams_equivalently() {
    // The acceptance-scale schema: a DTD with 20+ element declarations
    // compiles into one Arc<Schema>, and for every element the streaming
    // session verdicts equal whole-word matching on sampled child words.
    let schema = redet::SchemaBuilder::new()
        .parse_dtd(workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");
    assert!(
        schema.len() >= 20,
        "schema has {} declarations",
        schema.len()
    );
    for sym in schema.elements() {
        let Some(model) = schema.model(sym) else {
            continue;
        };
        let oracle = oracle_for(model);
        for word in sample_words(model, 0xB00C ^ sym.index() as u64) {
            let want = oracle.matches(&word);
            assert_equivalent(
                model,
                &oracle,
                &word,
                want,
                &format!("<{}> {word:?}", schema.name(sym)),
            );
        }
    }
}
