//! Regression suite for `e+` (DTD one-or-more) strategy routing.
//!
//! The path-decomposition matcher (Theorem 4.10) is proven for the
//! `∗`-only grammar of Section 2, where every iterating node is nullable;
//! a native `e+` is a *non-nullable* iterator and breaks its invariants.
//! These tests pin the routing contract:
//!
//! * automatic selection routes `e+` models to the k-occurrence or
//!   colored-ancestor matchers — with a **truthfully reported** strategy
//!   (what runs, not what was requested) and a determinism certificate;
//! * explicitly requesting `PathDecomposition` on an `e+` model fails with
//!   a clear [`Code::StrategyNotApplicable`] diagnostic instead of
//!   producing a silently wrong matcher;
//! * the routed matchers agree with the Glushkov DFA baseline and the NFA
//!   oracle on the `e+` language (one-or-more really is one-or-more).

use redet::{Code, DeterministicRegex, MatchStrategy, NfaSimulationMatcher, Symbol};
use redet_automata::Matcher;

/// DTD-style `+` models together with the strategy auto-selection must
/// report for them (small `k` → k-occurrence; `k > 4` → colored-ancestor,
/// never path-decomposition, never the counted simulation).
const PLUS_MODELS: &[(&str, MatchStrategy)] = &[
    ("(title, author+, year?)", MatchStrategy::KOccurrence),
    ("(a b)+", MatchStrategy::KOccurrence),
    ("(a, b+, c)+, d", MatchStrategy::KOccurrence),
    ("(x, (a b)+, y)+", MatchStrategy::KOccurrence),
    (
        // `a` occurs five times: k-occurrence is out, and `+` keeps the
        // path decomposition out — colored-ancestor is the routed matcher.
        "(a x1 a x2 a x3 a x4 a x5)+",
        MatchStrategy::ColoredAncestor,
    ),
];

fn words_upto(alphabet: &[Symbol], max_len: usize) -> Vec<Vec<Symbol>> {
    let mut words: Vec<Vec<Symbol>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for &s in alphabet {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        words.extend(next.iter().cloned());
        frontier = next;
    }
    words
}

#[test]
fn plus_models_route_to_linear_matchers_with_certificates() {
    for &(input, expected) in PLUS_MODELS {
        let model = DeterministicRegex::compile(input).unwrap();
        assert!(
            model.stats().has_plus && !model.stats().counting,
            "{input}: `e+` is native one-or-more, not a counter"
        );
        assert_eq!(model.strategy(), expected, "{input}");
        assert!(
            model.certificate().is_some(),
            "{input}: counting-free models keep their determinism certificate"
        );
    }
}

#[test]
fn requesting_path_decomposition_on_plus_is_a_clear_error() {
    for &(input, _) in PLUS_MODELS {
        // At compile time.
        let diag = DeterministicRegex::compile_with(input, MatchStrategy::PathDecomposition)
            .map(|m| m.strategy())
            .expect_err(input);
        assert_eq!(diag.code(), Code::StrategyNotApplicable, "{input}");
        assert!(
            diag.message().contains("non-nullable iterator"),
            "{input}: the diagnostic must explain *why* — got: {}",
            diag.message()
        );
        // And when switching an already-compiled model.
        let model = DeterministicRegex::compile(input).unwrap();
        let diag = model
            .with_strategy(MatchStrategy::PathDecomposition)
            .map(|m| m.strategy())
            .expect_err(input);
        assert_eq!(diag.code(), Code::StrategyNotApplicable, "{input}");
        assert!(
            diag.message().contains("k-occurrence") || diag.message().contains("colored"),
            "{input}: the diagnostic should point at the applicable matchers — got: {}",
            diag.message()
        );
    }
}

#[test]
fn reported_strategy_is_what_runs_not_what_was_requested() {
    // Auto on a plus model: the report names the routed matcher.
    let model = DeterministicRegex::compile("(title, author+, year?)").unwrap();
    assert_eq!(model.strategy(), MatchStrategy::KOccurrence);
    // Explicitly requesting an applicable strategy is honored and reported.
    let colored = model.with_strategy(MatchStrategy::ColoredAncestor).unwrap();
    assert_eq!(colored.strategy(), MatchStrategy::ColoredAncestor);
    // Counted models (true counters, not `e+`) report the simulation that
    // actually runs, whatever was requested.
    let counted = DeterministicRegex::compile("(item{2,4}, total)").unwrap();
    assert_eq!(counted.strategy(), MatchStrategy::CountedSimulation);
    let switched = counted.with_strategy(MatchStrategy::KOccurrence).unwrap();
    assert_eq!(
        switched.strategy(),
        MatchStrategy::CountedSimulation,
        "no echo of the rejected request"
    );
}

#[test]
fn routed_plus_matchers_agree_with_dfa_and_nfa_oracle() {
    for &(input, _) in PLUS_MODELS {
        let auto = DeterministicRegex::compile(input).unwrap();
        let dfa = auto.with_strategy(MatchStrategy::GlushkovDfa).unwrap();
        let oracle = NfaSimulationMatcher::build(auto.regex());
        let alphabet: Vec<Symbol> = auto.alphabet().symbols().collect();
        let max_len = if alphabet.len() > 4 { 3 } else { 6 };
        for word in words_upto(&alphabet, max_len) {
            let want = oracle.matches(&word);
            assert_eq!(
                auto.matches_symbols(&word),
                want,
                "{input}: auto-routed matcher disagrees with the oracle on {word:?}"
            );
            assert_eq!(
                dfa.matches_symbols(&word),
                want,
                "{input}: DFA baseline disagrees with the oracle on {word:?}"
            );
        }
    }
}

#[test]
fn plus_is_one_or_more_exactly() {
    let model = DeterministicRegex::compile("(title, author+, year?)").unwrap();
    assert!(!model.matches(&["title"]), "zero authors must be rejected");
    assert!(model.matches(&["title", "author"]));
    assert!(model.matches(&["title", "author", "author", "author", "year"]));
    assert!(!model.matches(&["title", "year"]));

    // Iterated plus bodies nest.
    let nested = DeterministicRegex::compile("(a, b+, c)+, d").unwrap();
    assert!(nested.matches(&["a", "b", "c", "d"]));
    assert!(nested.matches(&["a", "b", "b", "c", "a", "b", "c", "d"]));
    assert!(!nested.matches(&["a", "c", "d"]), "inner + needs one b");
    assert!(!nested.matches(&["d"]), "outer + needs one iteration");

    // The colored-ancestor-routed model accepts whole iterations only.
    let wide = DeterministicRegex::compile("(a x1 a x2 a x3 a x4 a x5)+").unwrap();
    assert_eq!(wide.strategy(), MatchStrategy::ColoredAncestor);
    let one = ["a", "x1", "a", "x2", "a", "x3", "a", "x4", "a", "x5"];
    let two: Vec<&str> = one.iter().chain(one.iter()).copied().collect();
    assert!(wide.matches(&one));
    assert!(wide.matches(&two));
    assert!(!wide.matches(&one[..8]), "partial iteration");
    assert!(!wide.matches(&[]), "plus needs one iteration");
}
