//! `redet` — deterministic regular expressions in linear time.
//!
//! This crate is the facade of a workspace reproducing *"Deterministic
//! Regular Expressions in Linear Time"* (Groz, Maneth, Staworko — PODS
//! 2012). Deterministic (one-unambiguous) regular expressions are the
//! content models of DTDs and XML Schema; the paper shows how to test
//! determinism in time `O(|e|)` (instead of the classical `O(σ|e|)`
//! Glushkov construction) and how to match words against deterministic
//! expressions with only linear preprocessing.
//!
//! # Quick start: schemas and streaming validation
//!
//! The production surface is schema-first: compile a whole DTD into one
//! shared-alphabet [`Schema`] and validate documents event-by-event.
//!
//! ```
//! use redet::SchemaBuilder;
//!
//! let schema = SchemaBuilder::new()
//!     .parse_dtd(
//!         "<!ELEMENT bibliography (book)*>
//!          <!ELEMENT book (title, author+, year?)>
//!          <!ELEMENT title (#PCDATA)>
//!          <!ELEMENT author (#PCDATA)>",
//!     )
//!     .build()
//!     .unwrap();
//!
//! let mut validator = schema.validator();
//! for event in ["bibliography", "book", "title", "/title", "author", "/author"] {
//!     match event.strip_prefix('/') {
//!         Some(_) => validator.end_element(),
//!         None => validator.start_element(event),
//!     }
//! }
//! validator.end_element(); // </book>
//! validator.end_element(); // </bibliography>
//! assert!(validator.finish().is_ok());
//! ```
//!
//! # Single expressions
//!
//! One content model at a time, with whole-word matching and incremental
//! sessions:
//!
//! ```
//! use redet::DeterministicRegex;
//!
//! let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
//! assert!(model.matches(&["title", "author", "author", "year"]));
//! assert!(!model.matches(&["title", "year", "date"]));
//!
//! // Non-deterministic content models are rejected with a structured
//! // diagnostic: code, source spans, conflict witness.
//! let diag = DeterministicRegex::compile("(a* b a + b b)*").unwrap_err();
//! assert_eq!(diag.code(), redet::Code::NotDeterministic);
//! println!("rejected: {diag}");
//! ```
//!
//! # Workspace layout
//!
//! | crate | contents |
//! |-------|----------|
//! | [`syntax`] | alphabet, AST, parser (with source spans), normalizer (restrictions R1–R3) |
//! | [`tree`] | parse-tree arena, RMQ/LCA, `SupFirst`/`SupLast`, `checkIfFollow` (Thm 2.4) |
//! | [`structures`] | van Emde Boas sets, lazy arrays, lowest colored ancestor |
//! | [`automata`] | Glushkov construction, baseline determinism test, DFA/NFA matching, the session API |
//! | [`core`] | linear-time determinism test (Thm 3.5), counting extension (§3.3), the four matchers (Thms 4.2/4.3/4.10/4.12), diagnostics |
//! | [`schema`] | `SchemaBuilder`/`Schema` (DTD fragments, shared pipeline), the event-driven `DocumentValidator`, the connection-oriented `ValidationService` (resumable handles, raw-byte ingestion, `ServiceLimits` resource governance), and the `ValidatorPool` batch sharding with panic isolation |
//!
//! The most convenient entry points are [`SchemaBuilder`] for whole schemas
//! and [`DeterministicRegex`] for single expressions; the individual
//! algorithms are available through the re-exported crates for benchmarking
//! and fine-grained control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use redet_automata as automata;
pub use redet_core as core;
pub use redet_schema as schema;
pub use redet_structures as structures;
pub use redet_syntax as syntax;
pub use redet_tree as tree;

pub use redet_automata::{
    GlushkovAutomaton, GlushkovDfaMatcher, Matcher, NfaSimulationMatcher, PosStepper,
    RejectWitness, Session, Step,
};
pub use redet_core::{
    check_counting_determinism, check_determinism, BatchScratch, Code, ColoredAncestorMatcher,
    CompiledAnalysis, ConflictWitness, DeterminismCertificate, DeterministicRegex, Diagnostic,
    DocLocation, KOccurrenceMatcher, MatchScratch, MatchSession, MatchState, MatchStrategy,
    NonDeterminism, PathDecompositionMatcher, Pipeline, PositionMatcher, StarFreeMatcher,
    TransitionSim,
};
pub use redet_schema::{
    ContentKind, DocEvent, DocId, DocumentValidator, FeedStatus, Schema, SchemaBuilder,
    ServiceLimits, ValidationService, ValidatorPool,
};
pub use redet_syntax::{parse, Alphabet, ExprStats, Regex, Span, Symbol};
pub use redet_tree::TreeAnalysis;
