//! `redet` — deterministic regular expressions in linear time.
//!
//! This crate is the facade of a workspace reproducing *"Deterministic
//! Regular Expressions in Linear Time"* (Groz, Maneth, Staworko — PODS
//! 2012). Deterministic (one-unambiguous) regular expressions are the
//! content models of DTDs and XML Schema; the paper shows how to test
//! determinism in time `O(|e|)` (instead of the classical `O(σ|e|)`
//! Glushkov construction) and how to match words against deterministic
//! expressions with only linear preprocessing.
//!
//! # Quick start
//!
//! ```
//! use redet::DeterministicRegex;
//!
//! // A DTD-style content model.
//! let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
//! assert!(model.matches(&["title", "author", "author", "year"]));
//! assert!(!model.matches(&["title", "year", "date"]));
//!
//! // Non-deterministic content models are rejected, with a witness.
//! let err = DeterministicRegex::compile("(a* b a + b b)*").unwrap_err();
//! println!("rejected: {err}");
//! ```
//!
//! # Workspace layout
//!
//! | crate | contents |
//! |-------|----------|
//! | [`syntax`](redet_syntax) | alphabet, AST, parser, normalizer (restrictions R1–R3) |
//! | [`tree`](redet_tree) | parse-tree arena, RMQ/LCA, `SupFirst`/`SupLast`, `checkIfFollow` (Thm 2.4) |
//! | [`structures`](redet_structures) | van Emde Boas sets, lazy arrays, lowest colored ancestor |
//! | [`automata`](redet_automata) | Glushkov construction, baseline determinism test, DFA/NFA matching |
//! | [`core`](redet_core) | linear-time determinism test (Thm 3.5), counting extension (§3.3), the four matchers (Thms 4.2/4.3/4.10/4.12) |
//!
//! The most convenient entry point is [`DeterministicRegex`]; the individual
//! algorithms are available through the re-exported crates for benchmarking
//! and fine-grained control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use redet_automata as automata;
pub use redet_core as core;
pub use redet_structures as structures;
pub use redet_syntax as syntax;
pub use redet_tree as tree;

pub use redet_automata::{GlushkovAutomaton, GlushkovDfaMatcher, Matcher, NfaSimulationMatcher};
pub use redet_core::{
    check_counting_determinism, check_determinism, BatchScratch, ColoredAncestorMatcher,
    CompiledAnalysis, DeterminismCertificate, DeterministicRegex, KOccurrenceMatcher,
    MatchStrategy, NonDeterminism, PathDecompositionMatcher, Pipeline, PositionMatcher, RegexError,
    StarFreeMatcher, TransitionSim,
};
pub use redet_syntax::{parse, Alphabet, ExprStats, Regex, Symbol};
pub use redet_tree::TreeAnalysis;
