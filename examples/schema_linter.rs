//! A schema linter: compiles a DTD fragment and reports every problem as a
//! structured diagnostic — stable error codes, byte spans into the DTD
//! source, and determinism-conflict witnesses — exactly what a schema
//! editor would surface to its user.
//!
//! Run with `cargo run --example schema_linter` for the built-in corpus, or
//! pass a DTD on the command line:
//! `cargo run --example schema_linter -- "<!ELEMENT a (b b* b)>"`.

use redet::{Schema, SchemaBuilder};

/// A deterministic schema: every model compiles and gets a strategy.
const GOOD_DTD: &str = r#"
    <!ELEMENT catalog (product | bundle)*>
    <!ELEMENT product (name, sku, price, tag*)>
    <!ELEMENT bundle (name, product product+, price)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT sku (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT tag (#PCDATA)>
    <!ELEMENT audit ANY>
"#;

/// A schema with one of everything a linter should catch: a
/// non-deterministic model, a duplicate declaration, a parse error, and a
/// malformed declaration.
const BAD_DTD: &str = r#"
    <!ELEMENT doc (section*, appendix?)>
    <!ELEMENT section (para* para)>
    <!ELEMENT doc (chapter*)>
    <!ELEMENT appendix (para,)>
    <!ELEMENT para NONSENSE>
"#;

fn underline(source: &str, start: usize, end: usize) -> String {
    // Render the line containing the span with a caret underline.
    let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = source[start..]
        .find('\n')
        .map(|i| start + i)
        .unwrap_or(source.len());
    let line = &source[line_start..line_end];
    let pad = " ".repeat(start - line_start);
    let carets = "^".repeat((end.min(line_end) - start).max(1));
    format!("    {line}\n    {pad}{carets}")
}

fn lint(name: &str, dtd: &str) {
    println!("── linting {name} ──");
    match SchemaBuilder::new().parse_dtd(dtd).build() {
        Ok(schema) => report_ok(&schema),
        Err(diagnostics) => {
            println!("{} problem(s):", diagnostics.len());
            for diagnostic in &diagnostics {
                println!("  {diagnostic}");
                if let Some(span) = diagnostic.span() {
                    println!("{}", underline(dtd, span.start, span.end));
                }
                if let Some(witness) = diagnostic.witness() {
                    println!(
                        "    note: positions #{} and #{} both read '{}' after a \
                         common prefix ({:?})",
                        witness.first.index(),
                        witness.second.index(),
                        witness.symbol_name,
                        witness.kind,
                    );
                }
            }
        }
    }
    println!();
}

fn report_ok(schema: &Schema) {
    println!(
        "deterministic: {} element declarations, {} interned names",
        schema.len(),
        schema.alphabet().len()
    );
    println!(
        "  {:<12} {:<20} {:>3} {:>5} {:>10} {:>9}",
        "element", "strategy", "k", "c_e", "star-free", "certified"
    );
    for sym in schema.elements() {
        let name = schema.name(sym);
        match schema.model(sym) {
            Some(model) => {
                let stats = model.stats();
                println!(
                    "  {:<12} {:<20} {:>3} {:>5} {:>10} {:>9}",
                    name,
                    format!("{:?}", model.strategy()),
                    stats.max_occurrences,
                    stats.plus_depth,
                    stats.star_free,
                    model.certificate().is_some(),
                );
            }
            None => println!(
                "  {:<12} {:<20}",
                name,
                format!("{:?}", schema.content_kind(sym))
            ),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        lint("the well-formed catalog DTD", GOOD_DTD);
        lint("the broken document DTD", BAD_DTD);
    } else {
        for (i, dtd) in args.iter().enumerate() {
            lint(&format!("argument #{}", i + 1), dtd);
        }
    }
}
