//! A content-model linter: reads content models (from the command line or a
//! built-in corpus), reports whether each is deterministic, and explains
//! non-determinism with a witness — the diagnostic a schema editor would
//! surface to its user.
//!
//! Run with `cargo run --example schema_linter` or
//! `cargo run --example schema_linter -- "(a b + b b? a)*" "a b* b"`.

use redet::syntax::printer::to_string;
use redet::{check_counting_determinism, check_determinism, parse, ExprStats, TreeAnalysis};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let corpus: Vec<String> = if args.is_empty() {
        BUILTIN_CORPUS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let mut deterministic = 0usize;
    for input in &corpus {
        match lint(input) {
            Ok(report) => {
                if report.deterministic {
                    deterministic += 1;
                }
                println!("{report}");
            }
            Err(error) => println!("{input}\n  parse error: {error}\n"),
        }
    }
    println!(
        "{deterministic}/{} content models are deterministic",
        corpus.len()
    );
}

struct Report {
    rendered: String,
    deterministic: bool,
    verdict: String,
    stats: ExprStats,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.rendered)?;
        writeln!(f, "  {}", self.verdict)?;
        writeln!(
            f,
            "  size {}, σ = {}, k = {}, alternation depth = {}, star-free: {}, counters: {}",
            self.stats.size,
            self.stats.distinct_symbols,
            self.stats.max_occurrences,
            self.stats.plus_depth,
            self.stats.star_free,
            self.stats.counting
        )
    }
}

fn lint(input: &str) -> Result<Report, redet::syntax::ParseError> {
    let (regex, sigma) = parse(input)?;
    let stats = ExprStats::of(&regex);
    let verdict = if stats.counting {
        check_counting_determinism(&regex).err()
    } else {
        let analysis = TreeAnalysis::build(&regex);
        check_determinism(&analysis).err()
    };
    let (deterministic, verdict) = match verdict {
        None => (
            true,
            "deterministic — usable as a DTD/XML Schema content model".to_string(),
        ),
        Some(witness) => {
            let name = sigma.name(witness.symbol);
            (
                false,
                format!(
                    "NOT deterministic: the {name}-labeled positions #{} and #{} can follow a common \
                     position ({:?}); a one-pass parser reading '{name}' would not know which branch to take",
                    witness.first.index(),
                    witness.second.index(),
                    witness.kind,
                ),
            )
        }
    };
    Ok(Report {
        rendered: to_string(&regex, &sigma),
        deterministic,
        verdict,
        stats,
    })
}

/// A small corpus in the spirit of the families discussed in the paper's
/// introduction and related-work section.
const BUILTIN_CORPUS: &[&str] = &[
    // Deterministic paper examples.
    "(a b + b b? a)*",
    "(c?((a b*)(a? c)))*(b a)",
    "(c (b? a)) a",
    // Non-deterministic paper examples.
    "(a* b a + b b)*",
    "a b* b",
    "(c (b? a?)) a",
    // DTD-style models.
    "(title, author+, (year | date)?)",
    "(chapter (section (para)* )* )? appendix",
    "(name, (street | pobox), city, zip, country?)",
    // Mixed content.
    "(em + strong + code + a0 + a1 + a2)*",
    // Counted XML-Schema-style models.
    "(a b){2,2} a (b + d)",
    "(a b){1,2} a",
    "((a{2,3} + b){2}){2} b",
    "(item{1,10}, total)",
];
