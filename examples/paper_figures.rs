//! Walks through the paper's worked examples (Example 2.1, Figure 1,
//! Example 4.1, Example 4.11) using the library's public API.
//!
//! Run with `cargo run --example paper_figures`.

use redet::core::skeleton::ColorAssignment;
use redet::core::{check_determinism, KOccurrenceMatcher, StarFreeMatcher, TransitionSim};
use redet::tree::PosId;
use redet::{parse, TreeAnalysis};
use std::sync::Arc;

fn main() {
    example_2_1();
    figure_1();
    example_4_11();
}

/// Example 2.1: e1 = (ab + b(b?)a)* is deterministic, e2 = (a*ba + bb)* is
/// not, and Follow(p3) / Follow(q3) are as stated.
fn example_2_1() {
    println!("=== Example 2.1 ===");
    let (e1, _) = parse("(a b + b (b?) a)*").unwrap();
    let (e2, _) = parse("(a* b a + b b)*").unwrap();
    let a1 = TreeAnalysis::build(&e1);
    let a2 = TreeAnalysis::build(&e2);

    let follow = |analysis: &TreeAnalysis, i: usize| -> Vec<usize> {
        analysis
            .follow_set_naive(PosId::from_index(i))
            .into_iter()
            .filter(|&q| q != analysis.tree().end_pos())
            .map(|q| q.index())
            .collect()
    };
    println!("  Follow_e1(p3) = {:?} (paper: [4, 5])", follow(&a1, 3));
    println!("  Follow_e2(q3) = {:?} (paper: [1, 2, 4])", follow(&a2, 3));
    println!(
        "  e1 deterministic: {} — e2 deterministic: {}",
        check_determinism(&a1).is_ok(),
        check_determinism(&a2).is_ok()
    );
}

/// Figure 1 / Example 4.1: the expression e0 = (c?((ab*)(a?c)))*(ba), its
/// colors and the transition simulation from p3.
fn figure_1() {
    println!("\n=== Figure 1 / Example 4.1 ===");
    let (e0, sigma) = parse("(c?((a b*)(a? c)))*(b a)").unwrap();
    let analysis = Arc::new(TreeAnalysis::build(&e0));

    let colors = ColorAssignment::build(&analysis).unwrap();
    println!("  color assignments (node, color, witness):");
    for (node, sym, witness) in &colors.assignments {
        println!(
            "    node {:>3}  color {:>2}  witness p{}",
            node.index(),
            sigma.name(*sym),
            witness.index()
        );
    }

    let matcher = KOccurrenceMatcher::new(analysis.clone());
    let c = sigma.lookup("c").unwrap();
    let a = sigma.lookup("a").unwrap();
    let p3 = PosId::from_index(3);
    let p5 = matcher.find_next(p3, c).unwrap();
    let p2 = matcher.find_next(p5, a).unwrap();
    println!(
        "  from p3 reading 'c' → p{}; from p{} reading 'a' → p{}  (paper: p5, then p2)",
        p5.index(),
        p5.index(),
        p2.index()
    );
}

/// Example 4.11: matching four words simultaneously against the star-free
/// expression (((a + ba)(c?))(d?b)).
fn example_4_11() {
    println!("\n=== Example 4.11 ===");
    let (e, sigma) = parse("((a + b a)(c?))(d? b)").unwrap();
    let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap();
    let word = |text: &str| -> Vec<redet::Symbol> {
        text.chars()
            .map(|ch| sigma.lookup(&ch.to_string()).unwrap())
            .collect()
    };
    let names = ["bcdb", "acdba", "acb", "bada"];
    let words: Vec<Vec<redet::Symbol>> = names.iter().map(|t| word(t)).collect();
    let verdicts = matcher.match_words(&words);
    for (name, verdict) in names.iter().zip(verdicts) {
        println!("  w = {name:6} matches: {verdict}   (paper: only 'acb' matches)");
    }
}
