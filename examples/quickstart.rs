//! Quick start: compile content models, check determinism, validate words.
//!
//! Run with `cargo run --example quickstart`.

use redet::{Code, DeterministicRegex};

fn main() {
    // A DTD-style content model: a title, one or more authors, and an
    // optional year or date.
    let model = DeterministicRegex::compile("(title, author+, (year | date)?)")
        .expect("the content model is deterministic");

    println!("strategy chosen automatically: {:?}", model.strategy());
    println!("structural statistics:         {:?}", model.stats());

    for child_sequence in [
        vec!["title", "author"],
        vec!["title", "author", "author", "author", "year"],
        vec!["title", "author", "date"],
        vec!["title", "year"],
        vec!["author", "title"],
    ] {
        println!(
            "  {:40}  {}",
            child_sequence.join(" "),
            if model.matches(&child_sequence) {
                "valid"
            } else {
                "INVALID"
            }
        );
    }

    // The paper's running example e0 = (c?((ab*)(a?c)))*(ba) — Figure 1.
    let e0 = DeterministicRegex::compile("(c?((a b*)(a? c)))*(b a)").unwrap();
    println!("\nFigure 1 expression, matching a few words:");
    for word in [
        vec!["b", "a"],
        vec!["c", "a", "c", "b", "a"],
        vec!["a", "b"],
    ] {
        println!(
            "  {:20}  {}",
            word.join(" "),
            if e0.matches(&word) {
                "member"
            } else {
                "not a member"
            }
        );
    }

    // Non-deterministic content models are rejected with a structured
    // diagnostic — code, source spans, and the conflict witness. This is
    // exactly the check a schema validator must perform on every content
    // model it loads (and the paper shows it can be done in linear time).
    let diagnostic = DeterministicRegex::compile("(a* b a + b b)*").unwrap_err();
    assert_eq!(diagnostic.code(), Code::NotDeterministic);
    println!("\n(a*ba + bb)* rejected: {diagnostic}");
}
