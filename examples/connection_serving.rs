//! Connection-oriented serving: many interleaved documents, raw bytes in.
//!
//! A server does not see whole documents — it sees connections delivering
//! chunks in arbitrary order. This example drives a `ValidationService` the
//! way a network loop would: several in-flight documents, advanced a few
//! bytes (or events) at a time in round-robin, with fail-fast rejection;
//! plus a suspended/resumed `MatchSession` for a single content model.
//!
//! Run with `cargo run --example connection_serving`.

use redet::{DeterministicRegex, DocEvent, FeedStatus, SchemaBuilder};

fn main() {
    let schema = SchemaBuilder::new()
        .parse_dtd(
            "<!ELEMENT bibliography (book)*>
             <!ELEMENT book (title, author+, year?)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT year (#PCDATA)>",
        )
        .build()
        .expect("the DTD is deterministic");
    let mut service = schema.service();

    // Three "connections": two raw byte streams (one of them invalid — a
    // year before the author) and one pre-interned event stream.
    let good = "<bibliography><book><title/><author/><author/><year/></book></bibliography>";
    let bad = "<bibliography><book><title/><year/><author/></book></bibliography>";
    let s = |name: &str| schema.lookup(name).unwrap();
    let events = [
        DocEvent::Open(s("bibliography")),
        DocEvent::Open(s("book")),
        DocEvent::Open(s("title")),
        DocEvent::Close,
        DocEvent::Open(s("author")),
        DocEvent::Close,
        DocEvent::Close,
        DocEvent::Close,
    ];

    let c1 = service.open();
    let c2 = service.open();
    let c3 = service.open();

    // Round-robin: 7-byte chunks for the byte connections, two events at a
    // time for the event connection — chunk boundaries land mid-tag and the
    // tokenizer does not care.
    let mut cursor1 = 0usize;
    let mut cursor2 = 0usize;
    let mut cursor3 = 0usize;
    while cursor1 < good.len() || cursor2 < bad.len() || cursor3 < events.len() {
        if cursor1 < good.len() {
            let end = (cursor1 + 7).min(good.len());
            let status = service.feed_bytes(c1, &good.as_bytes()[cursor1..end]);
            println!(
                "c1 <- {:24} {status:?}",
                format!("{:?}", &good[cursor1..end])
            );
            cursor1 = end;
        }
        if cursor2 < bad.len() {
            let end = (cursor2 + 7).min(bad.len());
            let status = service.feed_bytes(c2, &bad.as_bytes()[cursor2..end]);
            println!(
                "c2 <- {:24} {status:?}",
                format!("{:?}", &bad[cursor2..end])
            );
            if status == FeedStatus::Rejected {
                // Fail fast: stop reading from this connection — the
                // retained diagnostic names the earliest offending event.
                println!("c2 rejected early: {}", service.diagnostic(c2).unwrap());
                cursor2 = bad.len();
            } else {
                cursor2 = end;
            }
        }
        if cursor3 < events.len() {
            let end = (cursor3 + 2).min(events.len());
            let status = service.feed(c3, &events[cursor3..end]);
            println!(
                "c3 <- {:24} {status:?}",
                format!("{} events", end - cursor3)
            );
            cursor3 = end;
        }
    }

    println!("\nfinish c1 (valid bytes):    {:?}", service.finish(c1));
    println!(
        "finish c2 (rejected early): {:?}",
        service.finish(c2).err().map(|d| d.code())
    );
    println!("finish c3 (valid events):   {:?}", service.finish(c3));

    // Single content models park the same way: suspend a MatchSession into
    // a plain-data state (no borrow), resume it later.
    let model = DeterministicRegex::compile("(title, author+, year?)").unwrap();
    let title = model.alphabet().lookup("title").unwrap();
    let author = model.alphabet().lookup("author").unwrap();
    let mut session = model.start();
    session.feed(title);
    let parked = session.into_state(); // store per connection, no lifetime
    let mut session = model.resume(parked);
    session.feed(author);
    println!(
        "\nresumed session accepts after [title, author]: {}",
        session.accepts()
    );
}
