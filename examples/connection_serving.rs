//! Connection-oriented serving — now over a real socket.
//!
//! Earlier revisions of this example drove a `ValidationService` by hand
//! to imitate a network loop. The workspace now ships that loop for real:
//! `redet-server`'s [`Server`] is a dependency-free TCP front end over a
//! [`SchemaRouter`], and this example exercises it the way `redet serve`
//! does — bind an ephemeral port, run the poll loop on a thread, and talk
//! to it with plain `TcpStream`s:
//!
//! - a **pipelined** client: three framed requests across two schemas in
//!   one write, three verdict lines back;
//! - a **trickling** client: one byte per write, because chunk boundaries
//!   are the network's business and never change a verdict;
//! - a **half-closed** client: an unframed request whose end-of-document
//!   is the TCP half-close itself;
//! - the `Q` request for a graceful drain, and the server's final report.
//!
//! Run with `cargo run --example connection_serving`.

use redet::{SchemaBuilder, ServiceLimits};
use redet_server::{SchemaRouter, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};

fn main() {
    // Two document types behind one socket: each schema gets its own
    // governed ValidationService, routed by the id in the request header.
    let bibliography = SchemaBuilder::new()
        .parse_dtd(
            "<!ELEMENT bibliography (book)*>
             <!ELEMENT book (title, author+, year?)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT year (#PCDATA)>",
        )
        .build()
        .expect("the DTD is deterministic");
    let catalog = SchemaBuilder::new()
        .parse_dtd(
            "<!ELEMENT catalog (product)*>
             <!ELEMENT product (name, price)>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT price (#PCDATA)>",
        )
        .build()
        .expect("the DTD is deterministic");

    let mut router = SchemaRouter::new();
    let limits = ServiceLimits::default()
        .with_max_depth(16)
        .with_max_in_flight(8);
    router.register("bib", bibliography, limits).unwrap();
    router.register("cat", catalog, limits).unwrap();

    let server =
        Server::bind("127.0.0.1:0", router, ServerConfig::default()).expect("loopback bind");
    let addr = server.local_addr().unwrap();
    let serving = std::thread::spawn(move || server.run().expect("poll loop"));
    println!("serving two schemas on {addr}\n");

    let good_bib = "<bibliography><book><title/><author/><author/><year/></book></bibliography>";
    let bad_bib = "<bibliography><book><title/><year/><author/></book></bibliography>";
    let good_cat = "<catalog><product><name/><price/></product></catalog>";

    // Client 1: three framed requests, two schemas, one write() — the
    // responses come back in order, and the invalid document's diagnostic
    // is byte-identical to what the in-process service reports.
    let mut batch = Vec::new();
    for (id, doc) in [("bib", good_bib), ("cat", good_cat), ("bib", bad_bib)] {
        batch.extend_from_slice(format!("V {id} {}\n", doc.len()).as_bytes());
        batch.extend_from_slice(doc.as_bytes());
    }
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&batch).unwrap();
    let mut reader = BufReader::new(stream);
    println!("pipelined client (3 framed requests, 1 write):");
    for label in ["bib/good", "cat/good", "bib/bad "] {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        print!("  {label} -> {line}");
    }

    // Client 2: the same bad document, one byte per write. The verdict
    // cannot tell the difference.
    let mut stream = TcpStream::connect(addr).unwrap();
    let request = format!("V bib {}\n{bad_bib}", bad_bib.len());
    for byte in request.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
    }
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    print!("\ntrickling client (1 byte per write):\n  bib/bad  -> {line}");

    // Client 3: an unframed request — no length up front. Half-closing the
    // write side tells the server the document is over; cutting a document
    // off mid-stream is itself a diagnostic.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"V cat\n").unwrap();
    stream.write_all(&good_cat.as_bytes()[..25]).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    print!("\nhalf-closed client (unframed, cut off mid-document):\n  cat/cut  -> {response}");

    // The Q request drains the server; run() returns its lifetime report.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"Q\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    print!("\ngraceful shutdown:\n  Q        -> {line}");

    let report = serving.join().unwrap();
    println!(
        "\nserver report: {} connections, {} documents ({} ok, {} err)",
        report.connections, report.documents, report.accepted, report.rejected
    );
}
