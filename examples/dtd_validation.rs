//! Validating XML documents against a DTD, schema-first.
//!
//! This example mirrors the paper's motivating scenario end to end: a DTD's
//! element declarations are compiled into one shared-alphabet [`Schema`]
//! (every content model checked for determinism, a matching strategy chosen
//! per element), and documents are validated **event-by-event** by a
//! [`DocumentValidator`] — no hand-rolled element stacks, no per-element
//! child lists. Run with `cargo run --example dtd_validation`.

use redet::{DocumentValidator, Schema, SchemaBuilder};
use std::sync::Arc;

const DTD: &str = r#"
    <!-- A small bibliography schema. -->
    <!ELEMENT bibliography (book | article)*>
    <!ELEMENT book (title, author+, publisher?, year)>
    <!ELEMENT article (title, author+, journal, year?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT publisher (#PCDATA)>
    <!ELEMENT journal (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
"#;

/// A toy document tree: a tag and a list of children.
struct Element {
    tag: &'static str,
    children: Vec<Element>,
}

fn elem(tag: &'static str, children: Vec<Element>) -> Element {
    Element { tag, children }
}

fn leaf(tag: &'static str) -> Element {
    elem(tag, Vec::new())
}

/// Streams the document tree into the validator as start/end events — the
/// shape a SAX/StAX parser produces. The validator holds the stack.
fn stream(validator: &mut DocumentValidator, element: &Element) {
    validator.start_element(element.tag);
    for child in &element.children {
        stream(validator, child);
    }
    validator.end_element();
}

fn validate(schema: &Arc<Schema>, name: &str, document: &Element) {
    let mut validator = schema.validator();
    stream(&mut validator, document);
    match validator.finish() {
        Ok(()) => println!("{name}: valid"),
        Err(diagnostics) => {
            println!("{name}: INVALID");
            for diagnostic in &diagnostics {
                println!("  - {diagnostic}");
            }
        }
    }
}

fn main() {
    let schema = SchemaBuilder::new()
        .parse_dtd(DTD)
        .build()
        .unwrap_or_else(|diagnostics| {
            for d in &diagnostics {
                eprintln!("{d}");
            }
            panic!("the example DTD should compile");
        });

    println!(
        "schema: {} element declarations, {} interned names",
        schema.len(),
        schema.alphabet().len()
    );
    for sym in schema.elements() {
        if let Some(model) = schema.model(sym) {
            println!(
                "  <{}> → strategy {:?}, k = {}, certified: {}",
                schema.name(sym),
                model.strategy(),
                model.stats().max_occurrences,
                model.certificate().is_some(),
            );
        }
    }
    println!();

    let good = elem(
        "bibliography",
        vec![
            elem(
                "book",
                vec![
                    leaf("title"),
                    leaf("author"),
                    leaf("author"),
                    leaf("publisher"),
                    leaf("year"),
                ],
            ),
            elem(
                "article",
                vec![leaf("title"), leaf("author"), leaf("journal")],
            ),
        ],
    );
    validate(&schema, "well-formed bibliography", &good);

    let bad = elem(
        "bibliography",
        vec![
            // The year is missing.
            elem("book", vec![leaf("title"), leaf("author")]),
            // Children out of order.
            elem(
                "article",
                vec![leaf("author"), leaf("title"), leaf("journal")],
            ),
            // An element the schema has never heard of.
            elem("pamphlet", vec![leaf("title")]),
        ],
    );
    validate(&schema, "broken bibliography", &bad);

    // The hash-free hot path: pre-intern tag names once, then stream
    // symbols. This is what a high-throughput validation service does.
    let bib = schema.lookup("bibliography").unwrap();
    let book = schema.lookup("book").unwrap();
    let title = schema.lookup("title").unwrap();
    let author = schema.lookup("author").unwrap();
    let year = schema.lookup("year").unwrap();
    let mut validator = schema.validator();
    validator.start_element_symbol(bib);
    validator.start_element_symbol(book);
    for sym in [title, author, year] {
        validator.start_element_symbol(sym);
        validator.end_element();
    }
    validator.end_element();
    validator.end_element();
    println!(
        "\npre-interned streaming: {}",
        if validator.finish().is_ok() {
            "valid"
        } else {
            "invalid"
        }
    );
}
