//! Validating a small XML document against a DTD-like schema.
//!
//! This example mirrors the paper's motivating scenario: every element
//! declaration of a schema is a deterministic content model, and validating
//! a document means matching each element's child sequence against the
//! content model of its tag. Run with `cargo run --example dtd_validation`.

use redet::{Alphabet, DeterministicRegex};
use redet_syntax::parse_with_alphabet;
use std::collections::HashMap;

/// A toy document tree: a tag and a list of children.
struct Element {
    tag: &'static str,
    children: Vec<Element>,
}

fn elem(tag: &'static str, children: Vec<Element>) -> Element {
    Element { tag, children }
}

/// A schema: one deterministic content model per non-leaf element tag;
/// undeclared elements are treated as EMPTY (no children allowed).
struct Schema {
    models: HashMap<&'static str, DeterministicRegex>,
}

impl Schema {
    fn new(declarations: &[(&'static str, &str)]) -> Self {
        let models = declarations
            .iter()
            .map(|(tag, content_model)| {
                let model = DeterministicRegex::compile(content_model)
                    .unwrap_or_else(|e| panic!("content model of <{tag}> rejected: {e}"));
                (*tag, model)
            })
            .collect();
        Schema { models }
    }

    /// Validates the subtree rooted at `element`, appending errors.
    fn validate(&self, element: &Element, errors: &mut Vec<String>) {
        let children: Vec<&str> = element.children.iter().map(|c| c.tag).collect();
        match self.models.get(element.tag) {
            Some(model) => {
                if !model.matches(&children) {
                    errors.push(format!(
                        "<{}>: child sequence [{}] does not match its content model",
                        element.tag,
                        children.join(", ")
                    ));
                }
            }
            None => {
                if !children.is_empty() {
                    errors.push(format!(
                        "<{}> is declared EMPTY but has children",
                        element.tag
                    ));
                }
            }
        }
        for child in &element.children {
            self.validate(child, errors);
        }
    }
}

fn main() {
    let schema = Schema::new(&[
        ("bibliography", "(book | article)*"),
        ("book", "(title, author+, publisher?, year)"),
        ("article", "(title, author+, journal, year?)"),
    ]);

    let document = elem(
        "bibliography",
        vec![
            elem(
                "book",
                vec![
                    elem("title", vec![]),
                    elem("author", vec![]),
                    elem("author", vec![]),
                    elem("publisher", vec![]),
                    elem("year", vec![]),
                ],
            ),
            elem(
                "article",
                vec![
                    elem("title", vec![]),
                    elem("author", vec![]),
                    elem("journal", vec![]),
                ],
            ),
            // An invalid book: the year is missing.
            elem("book", vec![elem("title", vec![]), elem("author", vec![])]),
        ],
    );

    let mut errors = Vec::new();
    schema.validate(&document, &mut errors);
    if errors.is_empty() {
        println!("document is valid");
    } else {
        println!("document is INVALID:");
        for error in &errors {
            println!("  - {error}");
        }
    }

    // Sharing one alphabet across several content models of a schema keeps
    // symbol ids consistent, which matters when the same child sequences are
    // validated against different models.
    let mut sigma = Alphabet::new();
    let book = parse_with_alphabet("(title, author+, publisher?, year)", &mut sigma).unwrap();
    let article = parse_with_alphabet("(title, author+, journal, year?)", &mut sigma).unwrap();
    let book = DeterministicRegex::from_regex(book, sigma.clone()).unwrap();
    let article = DeterministicRegex::from_regex(article, sigma).unwrap();
    let children = ["title", "author", "journal"];
    println!(
        "\n[{}] as <book>: {}, as <article>: {}",
        children.join(", "),
        book.matches(&children),
        article.matches(&children)
    );
}
